"""Rewriting temporal operations into pure standard SQL.

This is the external translation module of the layered architecture.
Every function returns a SQL string over the flat tables of
:mod:`repro.layered.schema` that uses **no temporal UDFs** — only joins,
scalar ``MAX``/``MIN``/``COALESCE``, and (for coalescing) the classic
doubly-nested ``NOT EXISTS`` formulation from Böhlen, Snodgrass & Soo,
*Coalescing in Temporal Databases* (VLDB 1996).

``NOW`` appears as the named parameter ``:now``: the translator cannot
push a moving point into stock SQL, so the caller substitutes a concrete
transaction time at execution — one of the structural weaknesses of the
layered approach the paper points out.

:func:`sql_complexity` quantifies how complex the generated SQL is
(experiment E2's static metrics).
"""

from __future__ import annotations

import re
from typing import Dict, Sequence

from repro.layered.schema import FlatSchema

__all__ = [
    "grounded_view",
    "translate_timeslice",
    "translate_coalesce",
    "translate_overlap_join",
    "translate_total_length",
    "sql_complexity",
]


def grounded_view(schema: FlatSchema, payload: Sequence[str]) -> str:
    """Inline view exposing ``(payload..., s, e)`` with NOW grounded.

    Every translated query is built over copies of this view — layered
    translators inline it because the backend knows nothing about the
    temporal schema, which is exactly why their output balloons.
    """
    cols = ", ".join(f"d.{name}" for name in payload)
    prefix = f"{cols}, " if cols else ""
    return (
        f"(SELECT {prefix}v.start_s AS s, COALESCE(v.end_s, :now) AS e "
        f"FROM {schema.data_table} d JOIN {schema.valid_table} v ON v.rid = d.rid "
        f"WHERE v.start_s <= COALESCE(v.end_s, :now))"
    )


def _key_equality(left_alias: str, right_alias: str, keys: Sequence[str]) -> str:
    if not keys:
        return "1 = 1"
    return " AND ".join(f"{left_alias}.{key} = {right_alias}.{key}" for key in keys)


def translate_timeslice(schema: FlatSchema, payload: Sequence[str]) -> str:
    """Rows valid in the window ``[:lo, :hi]``, with clipped periods."""
    cols = ", ".join(f"d.{name}" for name in payload)
    prefix = f"{cols}, " if cols else ""
    return (
        f"SELECT d.rid, {prefix}"
        "MAX(v.start_s, :lo) AS start_s, "
        "MIN(COALESCE(v.end_s, :now), :hi) AS end_s "
        f"FROM {schema.data_table} d JOIN {schema.valid_table} v ON v.rid = d.rid "
        "WHERE v.start_s <= :hi "
        "AND COALESCE(v.end_s, :now) >= :lo "
        "AND v.start_s <= COALESCE(v.end_s, :now) "
        "ORDER BY d.rid, start_s"
    )


def translate_snapshot(schema: FlatSchema, payload: Sequence[str]) -> str:
    """Rows valid at the instant ``:at`` (snapshot semantics).

    The layered counterpart of TSQL2's ``SNAPSHOT AT`` — a flat
    stabbing query over the period rows.
    """
    cols = ", ".join(f"d.{name}" for name in payload)
    prefix = f", {cols}" if cols else ""
    return (
        f"SELECT DISTINCT d.rid{prefix} "
        f"FROM {schema.data_table} d JOIN {schema.valid_table} v ON v.rid = d.rid "
        "WHERE v.start_s <= :at AND COALESCE(v.end_s, :now) >= :at "
        "ORDER BY d.rid"
    )


def translate_coalesce(schema: FlatSchema, keys: Sequence[str]) -> str:
    """Temporal coalescing in stock SQL (Böhlen et al.'s formulation).

    Produces maximal periods per *keys* group: a pair of period rows
    (F, L) survives when nothing extends it on either side and no gap
    hides between them — three correlated ``NOT EXISTS`` subqueries, two
    of them nested.  This single operation is a built-in one-liner
    (``group_union``) in the integrated approach.
    """
    view = grounded_view(schema, keys)
    key_cols = ", ".join(f"F.{key}" for key in keys)
    key_prefix = f"{key_cols}, " if keys else ""
    fl = _key_equality("F", "L", keys)
    fm = _key_equality("M", "F", keys)
    ft = _key_equality("T", "F", keys)
    mt = _key_equality("T2", "M", keys)
    return (
        f"SELECT DISTINCT {key_prefix}F.s AS start_s, L.e AS end_s "
        f"FROM {view} F, {view} L "
        f"WHERE {fl} AND F.s <= L.e "
        f"AND NOT EXISTS (SELECT 1 FROM {view} M "
        f"WHERE {fm} AND M.s > F.s AND M.s <= L.e + 1 "
        f"AND NOT EXISTS (SELECT 1 FROM {view} T2 "
        f"WHERE {mt} AND T2.s < M.s AND M.s <= T2.e + 1)) "
        f"AND NOT EXISTS (SELECT 1 FROM {view} T "
        f"WHERE {ft} AND ((T.s < F.s AND F.s <= T.e + 1) "
        f"OR (T.s <= L.e + 1 AND L.e < T.e)))"
    )


def translate_overlap_join(
    left: FlatSchema,
    right: FlatSchema,
    left_payload: Sequence[str],
    right_payload: Sequence[str],
    extra_where: str = "1 = 1",
) -> str:
    """Temporal join: pairs whose elements share time, with the shared
    periods.

    The result is one row per overlapping *period pair* — uncoalesced,
    so a faithful layered pipeline must run the coalescing query on top
    (see :meth:`repro.layered.engine.LayeredEngine.overlap_join`).
    In the integrated approach this whole pipeline is the paper's
    ``overlaps(p1.valid, p2.valid)`` + ``intersect(p1.valid, p2.valid)``.
    """
    left_cols = ", ".join(f"d1.{name} AS l_{name}" for name in left_payload)
    right_cols = ", ".join(f"d2.{name} AS r_{name}" for name in right_payload)
    payload = ", ".join(part for part in (left_cols, right_cols) if part)
    payload_prefix = f"{payload}, " if payload else ""
    return (
        f"SELECT d1.rid AS rid1, d2.rid AS rid2, {payload_prefix}"
        "MAX(v1.start_s, v2.start_s) AS start_s, "
        "MIN(COALESCE(v1.end_s, :now), COALESCE(v2.end_s, :now)) AS end_s "
        f"FROM {left.data_table} d1 "
        f"JOIN {left.valid_table} v1 ON v1.rid = d1.rid, "
        f"{right.data_table} d2 "
        f"JOIN {right.valid_table} v2 ON v2.rid = d2.rid "
        f"WHERE ({extra_where}) "
        "AND v1.start_s <= COALESCE(v2.end_s, :now) "
        "AND v2.start_s <= COALESCE(v1.end_s, :now) "
        "AND v1.start_s <= COALESCE(v1.end_s, :now) "
        "AND v2.start_s <= COALESCE(v2.end_s, :now) "
        "ORDER BY rid1, rid2, start_s"
    )


def translate_total_length(schema: FlatSchema, keys: Sequence[str]) -> str:
    """Coalesced total time per group: coalesce, then sum period lengths.

    The integrated one-liner is ``length(group_union(valid))``.
    """
    inner = translate_coalesce(schema, keys)
    key_cols = ", ".join(keys)
    key_prefix = f"{key_cols}, " if keys else ""
    group_by = f" GROUP BY {key_cols}" if keys else ""
    return (
        f"SELECT {key_prefix}SUM(end_s - start_s + 1) AS total_seconds "
        f"FROM ({inner}){group_by}"
    )


_SELECT_RE = re.compile(r"\bSELECT\b", re.IGNORECASE)
_JOIN_RE = re.compile(r"\bJOIN\b", re.IGNORECASE)
_NOT_EXISTS_RE = re.compile(r"\bNOT\s+EXISTS\b", re.IGNORECASE)
_AND_OR_RE = re.compile(r"\b(AND|OR)\b", re.IGNORECASE)
_FROM_COMMA_RE = re.compile(r"\bFROM\b[^()]*?,", re.IGNORECASE)


def sql_complexity(sql: str) -> Dict[str, int]:
    """Static complexity metrics of a SQL string (experiment E2).

    ``selects`` counts SELECT keywords (1 = flat query), ``joins``
    counts explicit JOINs plus comma joins, ``not_exists`` counts
    correlated anti-joins, ``predicates`` counts AND/OR connectives,
    and ``chars`` is the raw query length.
    """
    return {
        "chars": len(sql),
        "selects": len(_SELECT_RE.findall(sql)),
        "joins": len(_JOIN_RE.findall(sql)) + len(_FROM_COMMA_RE.findall(sql)),
        "not_exists": len(_NOT_EXISTS_RE.findall(sql)),
        "predicates": len(_AND_OR_RE.findall(sql)),
    }
