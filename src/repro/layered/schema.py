"""Flat relational mapping of temporal tables (layered architecture).

A temporal table ``T(c1, ..., valid ELEMENT)`` becomes two stock tables:

* ``T__data(rid INTEGER PRIMARY KEY, c1, ...)`` — one row per tuple;
* ``T__valid(rid INTEGER, start_s INTEGER, end_s INTEGER)`` — one row
  per period of the tuple's element, closed-closed in epoch seconds,
  with ``end_s IS NULL`` encoding an end of ``NOW``.

This NULL-as-NOW encoding is what layered systems actually do (and it
is strictly *less* expressive than TIP: general ``NOW ± span`` instants
and NOW-relative starts cannot be represented — attempting to store one
raises :class:`~repro.errors.TranslationError`, a limitation experiment
E2 documents).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.element import Element
from repro.errors import TranslationError

__all__ = ["FlatSchema", "element_to_period_rows", "period_rows_to_element"]


def element_to_period_rows(element: Element) -> List[Tuple[int, Optional[int]]]:
    """Split an element into ``(start_s, end_s-or-None)`` period rows.

    Only determinate endpoints and a bare ``NOW`` end survive the
    flattening; anything else is beyond the layered encoding.
    """
    rows: List[Tuple[int, Optional[int]]] = []
    for period in element.periods:
        start = period.start
        end = period.end
        if not start.is_determinate:
            raise TranslationError(
                f"layered schema cannot store a NOW-relative period start: {period}"
            )
        start_s = start.ground_seconds(0)
        if end.is_determinate:
            rows.append((start_s, end.ground_seconds(0)))
        elif end.offset is not None and end.offset.is_zero:
            rows.append((start_s, None))
        else:
            raise TranslationError(
                f"layered schema cannot store a general NOW-relative end: {period}"
            )
    return rows


def period_rows_to_element(
    rows: Sequence[Tuple[int, Optional[int]]],
    now_seconds: int,
) -> Element:
    """Reassemble an element from period rows, grounding NULL ends."""
    pairs = []
    for start_s, end_s in rows:
        grounded_end = now_seconds if end_s is None else end_s
        if start_s <= grounded_end:
            pairs.append((start_s, grounded_end))
    return Element.from_pairs(pairs)


@dataclass
class FlatSchema:
    """DDL and DML helpers for one flattened temporal table."""

    name: str
    #: Non-temporal columns as ``(name, sql_type)`` pairs.
    columns: Sequence[Tuple[str, str]]

    @property
    def data_table(self) -> str:
        return f"{self.name}__data"

    @property
    def valid_table(self) -> str:
        return f"{self.name}__valid"

    def ddl(self) -> List[str]:
        """CREATE TABLE statements for the flat mapping."""
        column_sql = ", ".join(f"{name} {sql_type}" for name, sql_type in self.columns)
        return [
            f"CREATE TABLE {self.data_table} (rid INTEGER PRIMARY KEY, {column_sql})",
            (
                f"CREATE TABLE {self.valid_table} ("
                "rid INTEGER NOT NULL, start_s INTEGER NOT NULL, end_s INTEGER, "
                f"FOREIGN KEY (rid) REFERENCES {self.data_table}(rid))"
            ),
            f"CREATE INDEX {self.valid_table}__rid ON {self.valid_table}(rid)",
            f"CREATE INDEX {self.valid_table}__span ON {self.valid_table}(start_s, end_s)",
        ]

    def create(self, connection: sqlite3.Connection) -> None:
        for statement in self.ddl():
            connection.execute(statement)

    def insert(
        self,
        connection: sqlite3.Connection,
        row: Sequence,
        valid: Element,
    ) -> int:
        """Insert one tuple with its element timestamp; returns the rid."""
        if len(row) != len(self.columns):
            raise TranslationError(
                f"{self.name}: expected {len(self.columns)} columns, got {len(row)}"
            )
        placeholders = ", ".join("?" for _ in self.columns)
        cursor = connection.execute(
            f"INSERT INTO {self.data_table} ({', '.join(n for n, _ in self.columns)}) "
            f"VALUES ({placeholders})",
            tuple(row),
        )
        rid = cursor.lastrowid
        assert rid is not None
        connection.executemany(
            f"INSERT INTO {self.valid_table} (rid, start_s, end_s) VALUES (?, ?, ?)",
            [(rid, start_s, end_s) for start_s, end_s in element_to_period_rows(valid)],
        )
        return rid

    def fetch_valid(
        self,
        connection: sqlite3.Connection,
        rid: int,
        now_seconds: int,
    ) -> Element:
        """Reload one tuple's element, grounded at *now_seconds*."""
        rows = connection.execute(
            f"SELECT start_s, end_s FROM {self.valid_table} WHERE rid = ?", (rid,)
        ).fetchall()
        return period_rows_to_element(rows, now_seconds)

    def column_names(self) -> List[str]:
        return [name for name, _ in self.columns]
