"""Execution engine for the layered architecture.

:class:`LayeredEngine` is the complete TimeDB-style stack: a stock
SQLite connection (no TIP blade installed), the flat schema mapping,
and the SQL translator.  Clients call temporal operations; the engine
rewrites them to standard SQL, executes, and reassembles
:class:`~repro.core.element.Element` values on the client side — the
round trip the paper says "complicates the development of client
applications".
"""

from __future__ import annotations

import sqlite3
from functools import wraps
from itertools import groupby
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.chronon import Chronon
from repro.core.element import Element
from repro.core.granularity import wall_clock_seconds
from repro.core.parser import parse_chronon
from repro.errors import TranslationError
from repro.layered import translator
from repro.layered.schema import FlatSchema
from repro.obs.registry import get_registry as _obs_registry
from repro.obs.registry import state as _obs_state

__all__ = ["LayeredEngine"]


def _timed_op(method):
    """Record a temporal operation under ``layered.op.<name>``.

    The same instrument shape as the blade's ``blade.routine.<name>``
    (a ``.seconds`` latency histogram plus a volume counter), so the
    query profiler's per-routine breakdown and the E2 comparison see
    both architectures through one lens.  Off the observability switch
    this is a single attribute load and a direct call.
    """
    name = method.__name__

    @wraps(method)
    def wrapper(self, *args, **kwargs):
        if not _obs_state.enabled:
            return method(self, *args, **kwargs)
        started = perf_counter()
        rows = method(self, *args, **kwargs)
        registry = _obs_registry()
        registry.histogram(f"layered.op.{name}.seconds").observe(
            perf_counter() - started
        )
        registry.counter(f"layered.op.{name}.rows").add(len(rows))
        return rows

    return wrapper


def _to_seconds(value: "Chronon | str | int") -> int:
    if isinstance(value, Chronon):
        return value.seconds
    if isinstance(value, str):
        return parse_chronon(value).seconds
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise TranslationError(f"expected a time point, got {type(value).__name__}")


class LayeredEngine:
    """A temporal database built *on top of* a stock SQL engine."""

    def __init__(self, database: str = ":memory:", *, now: "Chronon | str | None" = None) -> None:
        self._conn = sqlite3.connect(database)
        self._now_override: Optional[int] = None
        self._schemas: Dict[str, FlatSchema] = {}
        if now is not None:
            self.set_now(now)

    # -- NOW control ---------------------------------------------------

    def set_now(self, now: "Chronon | str | None") -> None:
        """Override ``NOW`` (None reverts to the wall clock)."""
        self._now_override = None if now is None else _to_seconds(now)

    def now_seconds(self) -> int:
        if self._now_override is not None:
            return self._now_override
        return wall_clock_seconds()

    # -- schema and data -------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Tuple[str, str]]) -> FlatSchema:
        """Create a temporal table (flattened into data + valid tables)."""
        if name in self._schemas:
            raise TranslationError(f"table {name!r} already exists")
        schema = FlatSchema(name=name, columns=tuple(columns))
        schema.create(self._conn)
        self._schemas[name] = schema
        return schema

    def schema(self, name: str) -> FlatSchema:
        if name not in self._schemas:
            raise TranslationError(f"unknown temporal table {name!r}")
        return self._schemas[name]

    def insert(self, table: str, row: Sequence, valid: Element) -> int:
        """Insert one tuple with its element timestamp."""
        return self.schema(table).insert(self._conn, row, valid)

    def commit(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    @property
    def raw(self) -> sqlite3.Connection:
        return self._conn

    # -- temporal operations -----------------------------------------------

    @_timed_op
    def timeslice(
        self,
        table: str,
        lo: "Chronon | str | int",
        hi: "Chronon | str | int",
    ) -> List[Tuple]:
        """Tuples valid in ``[lo, hi]`` with their clipped elements.

        Returns ``(payload..., Element)`` per tuple.
        """
        schema = self.schema(table)
        payload = schema.column_names()
        sql = translator.translate_timeslice(schema, payload)
        params = {"now": self.now_seconds(), "lo": _to_seconds(lo), "hi": _to_seconds(hi)}
        rows = self._conn.execute(sql, params).fetchall()
        return self._assemble(rows, key_width=1 + len(payload), drop_leading=1)

    @_timed_op
    def snapshot(self, table: str, at: "Chronon | str | int") -> List[Tuple]:
        """Tuples valid at the instant *at*: ``(payload...)`` rows."""
        schema = self.schema(table)
        sql = translator.translate_snapshot(schema, schema.column_names())
        params = {"now": self.now_seconds(), "at": _to_seconds(at)}
        rows = self._conn.execute(sql, params).fetchall()
        return [tuple(row[1:]) for row in rows]  # drop the rid

    @_timed_op
    def coalesce(self, table: str, keys: Sequence[str]) -> List[Tuple]:
        """Coalesced maximal periods per *keys* group.

        Returns ``(keys..., Element)`` per group, via the translated
        doubly-nested NOT EXISTS query.
        """
        schema = self.schema(table)
        sql = translator.translate_coalesce(schema, keys)
        params = {"now": self.now_seconds()}
        rows = self._conn.execute(sql, params).fetchall()
        rows.sort(key=lambda row: row[: len(keys) + 1])
        return self._assemble(rows, key_width=len(keys))

    @_timed_op
    def overlap_join(
        self,
        left_table: str,
        right_table: str,
        extra_where: str = "1 = 1",
    ) -> List[Tuple]:
        """Temporal join: pairs whose elements overlap, with the shared time.

        Returns ``(left payload..., right payload..., Element)`` per
        overlapping pair.  The translated join yields uncoalesced period
        pairs; the client-side assembly normalizes them, mirroring the
        extra pass layered systems need.
        """
        left = self.schema(left_table)
        right = self.schema(right_table)
        sql = translator.translate_overlap_join(
            left, right, left.column_names(), right.column_names(), extra_where
        )
        params = {"now": self.now_seconds()}
        rows = self._conn.execute(sql, params).fetchall()
        key_width = 2 + len(left.columns) + len(right.columns)
        return self._assemble(rows, key_width=key_width, drop_leading=2)

    @_timed_op
    def total_length(self, table: str, keys: Sequence[str]) -> List[Tuple]:
        """Coalesced total seconds per group: ``(keys..., seconds)``."""
        schema = self.schema(table)
        sql = translator.translate_total_length(schema, keys)
        params = {"now": self.now_seconds()}
        return self._conn.execute(sql, params).fetchall()

    def complexity_report(self, table: str, keys: Sequence[str]) -> Dict[str, Dict[str, int]]:
        """Static SQL complexity of each translated operation (E2)."""
        schema = self.schema(table)
        payload = schema.column_names()
        return {
            "timeslice": translator.sql_complexity(
                translator.translate_timeslice(schema, payload)
            ),
            "coalesce": translator.sql_complexity(translator.translate_coalesce(schema, keys)),
            "overlap_join": translator.sql_complexity(
                translator.translate_overlap_join(schema, schema, payload, payload)
            ),
            "total_length": translator.sql_complexity(
                translator.translate_total_length(schema, keys)
            ),
        }

    # -- client-side reassembly ------------------------------------------

    def _assemble(
        self,
        rows: Sequence[Tuple],
        key_width: int,
        drop_leading: int = 0,
    ) -> List[Tuple]:
        """Group ``(key..., start_s, end_s)`` rows into Elements.

        *drop_leading* strips grouping-only columns (rids) from the
        output payload after grouping.
        """
        out: List[Tuple] = []
        for key, group in groupby(rows, key=lambda row: row[:key_width]):
            pairs = [(row[key_width], row[key_width + 1]) for row in group]
            element = Element.from_pairs(
                (start_s, end_s) for start_s, end_s in pairs if start_s <= end_s
            )
            out.append((*key[drop_leading:], element))
        return out
