"""Migration between the layered and integrated architectures.

The practical corollary of experiment E2: a site running a TimeDB-style
layered system (flat data + period-row tables) can *lift* its data into
TIP ELEMENT columns and retire the translation module; and a TIP table
can be *flattened* back for tools that only understand plain rows.

Lifting is lossless.  Flattening is lossy exactly where the layered
encoding is weaker (general ``NOW ± span`` instants; see
:mod:`repro.layered.schema`), and refuses rather than corrupts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.client.connection import TipConnection
from repro.core.element import Element
from repro.layered.engine import LayeredEngine
from repro.layered.schema import element_to_period_rows
from repro.errors import TranslationError

__all__ = ["lift_to_tip", "flatten_from_tip"]

_SQL_TYPES = {"TEXT", "INTEGER", "REAL", "BLOB", "NUMERIC"}


def lift_to_tip(
    engine: LayeredEngine,
    table: str,
    connection: TipConnection,
    *,
    target_table: str = "",
    valid_column: str = "valid",
    keep_now_open: bool = True,
) -> int:
    """Copy a layered temporal table into a TIP table.

    Period rows per tuple become one ELEMENT value; NULL ends become
    ``NOW`` endpoints when *keep_now_open* is set (recovering the open
    semantics the layered schema approximated), otherwise they ground
    at the engine's current NOW.  Returns the number of tuples lifted.
    """
    schema = engine.schema(table)
    target = target_table or table
    column_sql = ", ".join(f"{name} {sql_type}" for name, sql_type in schema.columns)
    connection.execute(
        f"CREATE TABLE {target} ({column_sql}, {valid_column} ELEMENT)"
    )

    payload = schema.column_names()
    data_rows = engine.raw.execute(
        f"SELECT rid, {', '.join(payload)} FROM {schema.data_table} ORDER BY rid"
    ).fetchall()
    placeholders = ", ".join("?" for _ in range(len(payload) + 1))
    lifted = 0
    for row in data_rows:
        rid, values = row[0], row[1:]
        period_rows = engine.raw.execute(
            f"SELECT start_s, end_s FROM {schema.valid_table} WHERE rid = ?", (rid,)
        ).fetchall()
        element = _element_from_period_rows(period_rows, engine, keep_now_open)
        connection.execute(
            f"INSERT INTO {target} VALUES ({placeholders})",
            (*values, element),
        )
        lifted += 1
    connection.commit()
    return lifted


def _element_from_period_rows(
    period_rows: Sequence[Tuple[int, object]],
    engine: LayeredEngine,
    keep_now_open: bool,
) -> Element:
    from repro.core.chronon import Chronon
    from repro.core.instant import NOW
    from repro.core.period import Period

    periods: List[Period] = []
    now_seconds = engine.now_seconds()
    for start_s, end_s in period_rows:
        if end_s is None:
            if keep_now_open:
                periods.append(Period(Chronon(start_s), NOW))
                continue
            end_s = now_seconds
        if start_s <= end_s:  # type: ignore[operator]
            periods.append(Period(Chronon(start_s), Chronon(end_s)))  # type: ignore[arg-type]
    return Element(periods)


def flatten_from_tip(
    connection: TipConnection,
    table: str,
    engine: LayeredEngine,
    *,
    target_table: str = "",
    valid_column: str = "valid",
) -> int:
    """Copy a TIP table into the layered flat schema.

    Column types are taken from the TIP table's declared DDL; the
    ELEMENT column becomes period rows.  Raises
    :class:`~repro.errors.TranslationError` (without partial writes for
    the offending tuple) when an element uses timestamps the layered
    encoding cannot hold.  Returns the number of tuples flattened.
    """
    target = target_table or table
    info = connection.execute(f"PRAGMA table_info({table})").fetchall()
    if not info:
        raise TranslationError(f"no such table {table!r}")
    columns: List[Tuple[str, str]] = []
    for _cid, name, decltype, *_rest in info:
        if name == valid_column:
            continue
        sql_type = (decltype or "TEXT").upper()
        columns.append((name, sql_type if sql_type in _SQL_TYPES else "TEXT"))
    if len(columns) == len(info):
        raise TranslationError(f"{table} has no column {valid_column!r}")

    engine.create_table(target, columns)
    names = ", ".join(name for name, _t in columns)
    rows = connection.query(f"SELECT {names}, {valid_column} FROM {table}")
    flattened = 0
    for row in rows:
        payload, element = row[:-1], row[-1]
        if element is None:
            element = Element.empty()
        element_to_period_rows(element)  # validate expressibility first
        engine.insert(target, payload, element)
        flattened += 1
    engine.commit()
    return flattened
