"""Deterministic fault injection for the TIP stack.

The paper argues that pushing temporal support *into* the engine makes
the whole system more dependable than layering it over an unmodified
one.  Dependability is only demonstrable under failure, so this package
gives the stack a controlled way to fail: named **injection points**
threaded through the server frame loop, the remote client's socket I/O,
local statement execution, blade routine evaluation, and codec decode
(:mod:`repro.faults.points`), each driven by a seeded, replayable
:class:`~repro.faults.plan.FaultPlan`.

Arming follows the same inert-when-off discipline as :mod:`repro.obs`:
the process-wide :data:`state` holds either ``None`` or the armed plan,
and every instrumented call site pays exactly one attribute check
(``state.plan is not None``) while disarmed — nothing else runs, nothing
allocates.  Arm with :func:`arm` / :func:`disarm`, or scoped::

    with faults.inject("client.recv:raise", seed=7):
        ...  # the first response read raises; the client must recover

Plans themselves are data (:func:`parse_plan`), so the ``.faults``
shell command and the ``repro faults`` CLI expose the same mini-language
the tests use, and a failing chaos run is reproduced by its
``(spec, seed)`` pair alone.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.faults.plan import (
    MODES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFault,
    parse_plan,
)
from repro.faults.points import CATALOGUE, PAYLOAD_POINTS, describe

__all__ = [
    "CATALOGUE", "PAYLOAD_POINTS", "MODES",
    "FaultPlan", "FaultPlanError", "FaultRule", "InjectedFault",
    "parse_plan", "describe",
    "state", "arm", "disarm", "inject", "active_plan",
]


class FaultState:
    """The process-wide switch: ``plan`` is None (off) or the armed plan.

    Hot paths read ``state.plan`` — one attribute load on this
    singleton — and skip everything when it is None, mirroring
    ``repro.obs.state.enabled``.
    """

    __slots__ = ("plan",)

    def __init__(self) -> None:
        self.plan: Optional[FaultPlan] = None


state = FaultState()


def arm(plan: Union[FaultPlan, str], seed: int = 0) -> FaultPlan:
    """Arm *plan* process-wide (a spec string is parsed first); returns it.

    Arming also clears the marshalling and compiled-statement caches:
    while a plan is armed the codec and the tSQL compiler bypass them
    entirely (every blob must reach the ``codec.decode`` point, every
    compile the ``stmt.cache`` point), and starting each chaos run
    cold keeps its hit/decode sequence — and therefore the seeded
    fault schedule — deterministic.
    """
    if isinstance(plan, str):
        plan = parse_plan(plan, seed=seed)
    # Imported lazily: repro.codec and repro.tsql.compiled read this
    # package's state on their hot paths, so module-level imports would
    # be circular.
    from repro.codec import cache as _marshal_cache
    from repro.tsql import compiled as _stmt_cache

    _marshal_cache.clear_caches()
    _stmt_cache.clear_cache()
    state.plan = plan
    return plan


def disarm() -> Optional[FaultPlan]:
    """Disarm fault injection; returns the previously armed plan, if any."""
    previous = state.plan
    state.plan = None
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or None when injection is off."""
    return state.plan


@contextmanager
def inject(plan: Union[FaultPlan, str], seed: int = 0) -> Iterator[FaultPlan]:
    """Arm *plan* for the duration of the block, restoring the previous state.

    The workhorse of the chaos tests: scoped arming keeps one test's
    faults from leaking into the next.
    """
    previous = state.plan
    armed = arm(plan, seed=seed)
    try:
        yield armed
    finally:
        state.plan = previous
