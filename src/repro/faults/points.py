"""The catalogue of named fault-injection points.

Each entry is a place in the stack where :mod:`repro.faults` can make
something go wrong on purpose.  The names are stable API: chaos plans
(:func:`repro.faults.parse_plan`), the ``.faults`` shell command, and
the ``repro faults`` CLI all validate against this catalogue, and the
chaos test matrix (``tests/test_faults_chaos.py``) enumerates it.

A point either carries a byte payload (the frame or blob flowing
through it — ``truncate`` and ``corrupt`` rewrite it) or is an *action*
point with no payload, where those modes degrade to ``raise``.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CATALOGUE", "PAYLOAD_POINTS", "describe"]

#: point name -> human description of where it fires.
CATALOGUE: Dict[str, str] = {
    "server.frame.read": "server: an inbound frame line, after the socket "
                         "read and before parsing",
    "server.frame.write": "server: an outbound response frame, after "
                          "serialization and before the socket write",
    "client.connect": "remote client: establishing the TCP connection "
                      "(initial connect and every reconnect)",
    "client.send": "remote client: a serialized request frame, before "
                   "the socket write",
    "client.recv": "remote client: a response frame line, after the "
                   "socket read and before parsing",
    "conn.execute": "local connection: statement execution in "
                    "TipCursor.execute, before the engine runs it",
    "blade.routine": "blade: every SQL routine invocation, before "
                     "argument coercion",
    "codec.decode": "codec: a binary blob entering decode()",
    "pool.checkout": "server pool: checking a reader connection out for "
                     "a read statement (fired per connection key)",
    "stmt.cache": "tsql: compiling a statement through the "
                  "compiled-statement cache (armed plans bypass the "
                  "cache, so every compile reaches this point)",
    "wal.checkpoint": "server pool: after each write commit, before the "
                      "passive WAL checkpoint (fired per connection key; "
                      "an injected failure defers the checkpoint, never "
                      "the write)",
    "plan.kernel": "planner: a statement routed to a set-based temporal "
                   "kernel, after plan selection and before the bulk "
                   "fetch (a raise aborts the kernel run with nothing "
                   "to roll back)",
}

#: Points whose payload is bytes (truncate/corrupt rewrite the data).
PAYLOAD_POINTS = frozenset(
    {"server.frame.read", "server.frame.write", "client.send", "client.recv",
     "codec.decode"}
)


def describe() -> str:
    """The catalogue as an aligned text table (CLI and shell output)."""
    width = max(len(name) for name in CATALOGUE)
    lines = []
    for name in sorted(CATALOGUE):
        flavor = "payload" if name in PAYLOAD_POINTS else "action "
        lines.append(f"{name.ljust(width)}  [{flavor}]  {CATALOGUE[name]}")
    return "\n".join(lines)
