"""Seeded fault plans: deterministic, replayable chaos.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries plus a
seed.  Every rule owns a private :class:`random.Random` derived from
``(plan seed, rule index)``, so the byte an injection corrupts, the
probability draws, and therefore the entire observable failure sequence
are a pure function of the plan — running the same plan against the
same workload reproduces the same faults, which is what makes chaos
test failures debuggable.

Rules fire at named injection points (:mod:`repro.faults.points`) in
one of four modes:

``raise``
    Raise :class:`InjectedFault` — a :class:`ConnectionError` subclass,
    so socket-layer call sites see it as a peer failure and engine-layer
    call sites surface it as a typed error.
``delay``
    Sleep ``delay`` seconds, then let the operation proceed (drives
    timeout and slow-peer paths).
``truncate``
    Cut a byte payload in half (a partial frame / blob).  At action
    points (no payload) this degrades to ``raise``.
``corrupt``
    Flip one byte chosen by the rule's RNG.  Degrades to ``raise`` at
    action points.

Firing is shaped by three optional knobs per rule: ``after`` skips the
first N hits, ``times`` caps total firings (``None`` = unlimited), and
``probability`` gates each eligible hit through the rule's RNG.

**Per-connection determinism.**  Call sites that serve many concurrent
connections (the server's reader pool and WAL checkpointer) pass a
stable per-connection ``key`` to :meth:`FaultPlan.apply`.  A keyed hit
is booked against that key alone: each ``(rule, key)`` pair owns its
own hit/fired counters and a private RNG seeded from
``(plan seed, rule index, key)``, so whether a connection's *n*-th hit
fires is a pure function of the plan and that connection's own call
sequence — thread interleaving across connections cannot change it.
Every keyed firing is also appended to the plan's **ledger**
(:meth:`FaultPlan.ledger`), so two runs of the same seeded plan against
the same per-connection workloads must produce identical per-key
ledgers — the property the concurrency chaos tests assert.
"""

from __future__ import annotations

import random
import threading
import time
from typing import List, Optional, Sequence

from repro.errors import TipError
from repro.faults.points import CATALOGUE, PAYLOAD_POINTS

__all__ = ["InjectedFault", "FaultPlanError", "FaultRule", "FaultPlan", "parse_plan", "MODES"]

MODES = ("raise", "delay", "truncate", "corrupt")


class FaultPlanError(TipError):
    """A fault plan or plan spec is invalid."""


class InjectedFault(ConnectionError):
    """A fault deliberately raised by an armed plan.

    Subclasses :class:`ConnectionError` so the hardened client retries
    it like any transport failure, while the server's frame loop treats
    it as a vanished peer and closes the session cleanly.
    """

    def __init__(self, point: str, mode: str) -> None:
        super().__init__(f"injected fault at {point} (mode={mode})")
        self.point = point
        self.mode = mode


class FaultRule:
    """One injection rule: where, what, and how often."""

    __slots__ = ("point", "mode", "probability", "times", "after", "delay",
                 "_hits", "_fired", "_rng", "_keyed", "_seed", "_index")

    def __init__(
        self,
        point: str,
        mode: str,
        *,
        probability: float = 1.0,
        times: Optional[int] = 1,
        after: int = 0,
        delay: float = 0.05,
    ) -> None:
        if point not in CATALOGUE:
            raise FaultPlanError(
                f"unknown injection point {point!r} (known: {', '.join(sorted(CATALOGUE))})"
            )
        if mode not in MODES:
            raise FaultPlanError(f"unknown fault mode {mode!r} (known: {', '.join(MODES)})")
        if not 0.0 <= probability <= 1.0:
            raise FaultPlanError(f"probability must be in [0, 1], got {probability}")
        if delay < 0:
            raise FaultPlanError(f"delay must be >= 0, got {delay}")
        self.point = point
        self.mode = mode
        self.probability = probability
        self.times = times
        self.after = after
        self.delay = delay
        self._hits = 0
        self._fired = 0
        self._rng: random.Random = random.Random(0)  # re-seeded by the plan
        # key -> [hits, fired, rng]: independent bookkeeping per
        # connection key, so keyed firing is interleaving-proof.
        self._keyed: dict = {}
        self._seed = 0
        self._index = 0

    def _key_state(self, key: str) -> list:
        state = self._keyed.get(key)
        if state is None:
            # A string seed goes through random's deterministic (sha512)
            # seeding path — unlike hash(), it is not salted per process,
            # so the per-key draw sequence replays across runs.
            state = [0, 0, random.Random(f"{self._seed}:{self._index}:{key}")]
            self._keyed[key] = state
        return state

    def as_dict(self) -> dict:
        entry = {
            "point": self.point, "mode": self.mode,
            "probability": self.probability, "times": self.times,
            "after": self.after, "delay": self.delay,
            "hits": self._hits, "fired": self._fired,
        }
        if self._keyed:
            entry["keyed"] = {
                key: {"hits": hits, "fired": fired}
                for key, (hits, fired, _rng) in sorted(self._keyed.items())
            }
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultRule({self.point}:{self.mode})"


class FaultPlan:
    """A seeded set of rules, consulted at every armed injection point."""

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self._lock = threading.Lock()
        # key -> ["point:mode#hit", ...]: every keyed firing, in the
        # key's own hit order.  Keyless firings land under "".
        self._ledger: dict = {}
        for index, rule in enumerate(self.rules):
            rule._rng = random.Random(seed * 1_000_003 + index)
            rule._hits = 0
            rule._fired = 0
            rule._keyed = {}
            rule._seed = seed
            rule._index = index

    # -- the one entry point the instrumented stack calls -------------

    def apply(
        self, point: str, data: Optional[bytes] = None, *, key: Optional[str] = None
    ) -> Optional[bytes]:
        """Consult the plan at *point*; returns the (possibly rewritten) payload.

        May raise :class:`InjectedFault` or sleep, per the matching
        rules.  Rule bookkeeping is locked (plans are shared across
        server handler threads); the actions themselves run unlocked so
        an injected delay never serializes unrelated sessions.

        *key*, when given, books the hit against that connection key
        alone (own counters, own RNG), making the firing decision a
        pure function of the key's hit sequence — see the module
        docstring.  Keyless calls keep the original global bookkeeping.
        """
        triggered: List[tuple] = []
        with self._lock:
            for rule in self.rules:
                if rule.point != point:
                    continue
                if key is None:
                    rule._hits += 1
                    hits, fired, rng = rule._hits, rule._fired, rule._rng
                else:
                    state = rule._key_state(key)
                    state[0] += 1
                    hits, fired, rng = state[0], state[1], state[2]
                if hits <= rule.after:
                    continue
                if rule.times is not None and fired >= rule.times:
                    continue
                if rule.probability < 1.0 and rng.random() >= rule.probability:
                    continue
                if key is None:
                    rule._fired += 1
                else:
                    rule._key_state(key)[1] += 1
                self._ledger.setdefault(key or "", []).append(
                    f"{point}:{rule.mode}#{hits}"
                )
                triggered.append((rule, hits))
        for rule, hits in triggered:
            self._note(point, rule.mode, key=key, hits=hits)
            data = self._perform(rule, point, data, key=key)
        return data

    def ledger(self, key: Optional[str] = None):
        """Fired-fault history: ``{key: [entries]}``, or one key's list.

        Entries read ``"point:mode#hit"`` where ``hit`` is the firing
        hit's ordinal *within that key*.  For a seeded plan driven by
        deterministic per-connection workloads the ledger is identical
        across runs — the replayability contract of keyed injection.
        """
        with self._lock:
            if key is not None:
                return list(self._ledger.get(key, []))
            return {k: list(v) for k, v in self._ledger.items()}

    @staticmethod
    def _note(
        point: str, mode: str,
        key: Optional[str] = None, hits: Optional[int] = None,
    ) -> None:
        from repro import obs
        from repro.obs import flight as _flight

        if obs.state.enabled:
            obs.counter(f"faults.injected.{point}.{mode}").inc()
            obs.counter("faults.injected.total").inc()
        if _flight.state.enabled:
            # The firing hit's ordinal is the same value the ledger
            # books, so a flight timeline replays exactly like the
            # ledger does for a seeded plan.
            _flight.record("fault.fired", session=key, point=point,
                           mode=mode, hit=hits)

    def _perform(
        self, rule: FaultRule, point: str, data: Optional[bytes],
        key: Optional[str] = None,
    ) -> Optional[bytes]:
        mode = rule.mode
        if mode == "delay":
            time.sleep(rule.delay)
            return data
        payload = data if isinstance(data, (bytes, bytearray)) else None
        if mode == "truncate" and payload is not None and len(payload) > 1:
            return bytes(payload[: len(payload) // 2])
        if mode == "corrupt" and payload is not None and len(payload) > 0:
            with self._lock:
                rng = rule._rng if key is None else rule._key_state(key)[2]
                index = rng.randrange(len(payload))
            flipped = bytes(payload)
            return flipped[:index] + bytes((flipped[index] ^ 0xFF,)) + flipped[index + 1:]
        # 'raise', and 'truncate'/'corrupt' degraded at action points.
        raise InjectedFault(point, mode)

    # -- inspection ---------------------------------------------------

    def as_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.as_dict() for rule in self.rules]}

    def spec(self) -> str:
        """The plan re-rendered in the mini-language :func:`parse_plan` reads."""
        parts = []
        for rule in self.rules:
            knobs = []
            if rule.probability != 1.0:
                knobs.append(f"p={rule.probability:g}")
            if rule.times != 1:
                knobs.append(f"times={'inf' if rule.times is None else rule.times}")
            if rule.after:
                knobs.append(f"after={rule.after}")
            if rule.mode == "delay":
                knobs.append(f"delay={rule.delay:g}")
            head = f"{rule.point}:{rule.mode}"
            parts.append(head + (":" + ",".join(knobs) if knobs else ""))
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, {self.spec()!r})"


def parse_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse the plan mini-language into a :class:`FaultPlan`.

    The spec is ``;``-separated rules of the form
    ``point:mode[:knob=value,...]`` with knobs ``p`` (probability),
    ``times`` (max firings, ``inf`` for unlimited), ``after`` (skip the
    first N hits), and ``delay`` (seconds, for mode ``delay``)::

        client.recv:raise
        server.frame.read:corrupt:times=3,after=1;blade.routine:delay:delay=0.2

    Every chaos run is then ``(spec, seed)`` — two small values that
    replay the exact same fault sequence.
    """
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, _, tail = chunk.partition(":")
        mode, _, knobtext = tail.partition(":")
        kwargs = {}
        if knobtext:
            for pair in knobtext.split(","):
                key, eq, value = pair.partition("=")
                key = key.strip()
                if not eq:
                    raise FaultPlanError(f"bad knob {pair!r} in rule {chunk!r}")
                try:
                    if key == "p":
                        kwargs["probability"] = float(value)
                    elif key == "times":
                        kwargs["times"] = None if value.strip() == "inf" else int(value)
                    elif key == "after":
                        kwargs["after"] = int(value)
                    elif key == "delay":
                        kwargs["delay"] = float(value)
                    else:
                        raise FaultPlanError(f"unknown knob {key!r} in rule {chunk!r}")
                except ValueError as exc:
                    raise FaultPlanError(f"bad value in knob {pair!r}: {exc}") from exc
        rules.append(FaultRule(head.strip(), mode.strip(), **kwargs))
    if not rules:
        raise FaultPlanError("empty fault plan spec")
    return FaultPlan(rules, seed=seed)
