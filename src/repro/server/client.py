"""The network client driver.

:class:`RemoteTipConnection` speaks the JSON-line protocol to a
:class:`~repro.server.server.TipServer` and exposes the familiar query
surface: ``execute`` / ``query`` / ``query_one`` returning TIP datatype
objects, plus a per-session ``set_now`` override.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence, Tuple

from repro.core.chronon import Chronon
from repro.errors import TipError
from repro.server import protocol

__all__ = ["RemoteTipConnection", "RemoteError"]


class RemoteError(TipError):
    """The server reported a failure for the last request."""

    def __init__(self, message: str, kind: str) -> None:
        super().__init__(message)
        self.kind = kind


class RemoteResult:
    """One statement's outcome."""

    def __init__(self, frame: dict) -> None:
        self.columns: List[str] = frame.get("columns", [])
        self.rows: List[Tuple] = [protocol.load_row(row) for row in frame.get("rows", [])]
        self.rowcount: int = frame.get("rowcount", -1)
        self.statement_now: Optional[str] = frame.get("statement_now")


class RemoteTipConnection:
    """A TIP session over TCP."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._closed = False

    # -- plumbing ------------------------------------------------------

    def _round_trip(self, frame: dict) -> dict:
        if self._closed:
            raise TipError("connection is closed")
        self._socket.sendall(protocol.dump_frame(frame))
        line = self._reader.readline()
        if not line:
            self._closed = True
            raise TipError("server closed the connection")
        response = protocol.load_frame(line)
        if not response.get("ok"):
            raise RemoteError(
                response.get("error", "unknown server error"),
                response.get("kind", "Error"),
            )
        return response

    # -- the query surface -----------------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> RemoteResult:
        """Run one statement; TIP parameters travel in binary form."""
        frame = {
            "op": "execute",
            "sql": sql,
            "params": [protocol.dump_value(value) for value in params],
        }
        return RemoteResult(self._round_trip(frame))

    def query(self, sql: str, params: Sequence = ()) -> List[Tuple]:
        return self.execute(sql, params).rows

    def query_one(self, sql: str, params: Sequence = ()) -> Optional[Tuple]:
        rows = self.query(sql, params)
        return rows[0] if rows else None

    def set_now(self, now: "Chronon | str | None") -> None:
        """Override NOW for this session only."""
        text = str(now) if isinstance(now, Chronon) else now
        self._round_trip({"op": "set_now", "now": text})

    def metrics(self, *, reset: bool = False, trace_tail: int = 0) -> dict:
        """The server's METRICS frame: session ledger + global snapshot.

        Returns ``{"session": {...}, "metrics": {...}}`` (see
        :mod:`repro.server.protocol`).  *reset* clears the server's
        process-wide registry after the snapshot is taken (the
        response carries the pre-reset state); *trace_tail* asks for
        the last *n* trace spans.
        """
        frame = {"op": "metrics"}
        if reset:
            frame["reset"] = True
        if trace_tail:
            frame["trace_tail"] = trace_tail
        response = self._round_trip(frame)
        return {key: value for key, value in response.items() if key != "ok"}

    def ping(self) -> bool:
        return bool(self._round_trip({"op": "ping"}).get("pong"))

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._round_trip({"op": "close"})
        except TipError:
            pass
        finally:
            self._closed = True
            self._reader.close()
            self._socket.close()

    def __enter__(self) -> "RemoteTipConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
