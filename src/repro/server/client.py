"""The network client driver.

:class:`RemoteTipConnection` speaks the JSON-line protocol to a
:class:`~repro.server.server.TipServer` and exposes the familiar query
surface: ``execute`` / ``query`` / ``query_one`` returning TIP datatype
objects, plus a per-session ``set_now`` override.

The driver is hardened against an imperfect network:

* **per-request timeouts** — every round trip is bounded by
  *request_timeout* (a slow or wedged server surfaces as a timeout,
  never a hang);
* **bounded retries** — transport failures (reset, EOF, timeout, a
  response too garbled to parse, or a server-declared ``retry_safe``
  error) are retried up to :class:`RetryPolicy` ``max_attempts`` times
  with exponential backoff and jitter;
* **idempotent reconnect** — each retry opens a fresh connection and
  first *re-establishes the session's NOW override* (the server keeps
  NOW per session, so a new session would otherwise silently revert to
  the wall clock — exactly the inconsistency-across-retries the
  NOW-semantics literature warns about), then replays the failed frame.

Server-reported errors that are not marked ``retry_safe`` (engine
errors, semantic protocol errors) are raised as :class:`RemoteError`
immediately — the request reached the server, so replaying it could
double-apply a write.

Retries and reconnects are counted in :mod:`repro.obs`
(``client.retries`` / ``client.reconnects``) when observability is on,
and the socket paths carry the ``client.connect`` / ``client.send`` /
``client.recv`` fault-injection points (:mod:`repro.faults`).
"""

from __future__ import annotations

import random
import socket
import time
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core.chronon import Chronon
from repro.errors import TipError
from repro.faults import state as _FAULTS
from repro.obs.profile import QueryProfile, StatementRecorder
from repro.obs.profile import state as _PROFILE
from repro.server import protocol

__all__ = ["RemoteTipConnection", "RemoteError", "RetryPolicy", "PreparedStatement"]


class RemoteError(TipError):
    """The server reported a failure for the last request."""

    def __init__(self, message: str, kind: str) -> None:
        super().__init__(message)
        self.kind = kind


class RetryPolicy:
    """Bounded exponential backoff with jitter.

    Attempt *n* (counting from 0) sleeps
    ``min(max_delay, base_delay * 2**n)`` scaled by a jitter factor
    drawn uniformly from ``[1 - jitter, 1 + jitter]`` before retrying.
    ``max_attempts`` bounds the total tries, including the first.
    """

    __slots__ = ("max_attempts", "base_delay", "max_delay", "jitter")

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.5,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter:
            base *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return base


class PreparedStatement:
    """A server-side compiled statement, executable by handle.

    Obtained from :meth:`RemoteTipConnection.prepare`.  The statement
    was compiled once on the server (through the compiled-statement
    cache); :meth:`execute` binds positional parameters to the plan and
    :meth:`executemany` ships parameter rows in batched ``many`` frames
    for bulk ingest.

    Handles are session state: a reconnect loses them, and a DDL or
    registry change on the server stales them.  Both surface as typed
    ``UnknownStatement`` / ``StaleStatement`` errors, on which this
    wrapper transparently **re-prepares** (once per call) and replays —
    so callers keep a long-lived PreparedStatement across server
    restarts of the schema registry without special-casing either.
    Usable as a context manager; exit deallocates the handle.
    """

    def __init__(self, connection: "RemoteTipConnection", sql: str) -> None:
        self._connection = connection
        self.sql = sql
        self.handle: Optional[int] = None
        self.translated_sql: Optional[str] = None
        self.param_count: Optional[int] = None
        self.generation: Optional[int] = None
        self.reprepares = 0
        self._closed = False
        self._prepare()

    def _prepare(self) -> None:
        response = self._connection._round_trip({"op": "prepare", "sql": self.sql})
        self.handle = response.get("handle")
        self.translated_sql = response.get("sql")
        self.param_count = response.get("params")
        self.generation = response.get("generation")

    def _round_trip(self, extra: dict) -> dict:
        if self._closed:
            raise TipError("prepared statement is deallocated")
        for attempt in (0, 1):
            frame = {"op": "execute_prepared", "handle": self.handle, **extra}
            try:
                return self._connection._round_trip(frame)
            except RemoteError as exc:
                if exc.kind in ("UnknownStatement", "StaleStatement") and attempt == 0:
                    # The handle died (reconnect) or went stale (schema
                    # or registry moved): compile against the current
                    # state and replay — the server guaranteed the
                    # failed execute never ran.
                    self._prepare()
                    self.reprepares += 1
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def execute(self, params: Sequence = ()) -> RemoteResult:
        """Run the plan once with *params* bound positionally."""
        return RemoteResult(self._round_trip(
            {"params": [protocol.dump_value(value) for value in params]}
        ))

    def executemany(self, seq_of_params, *, chunk: int = 256) -> int:
        """Run the plan for every parameter row; total affected rows.

        Rows ship in ``many`` frames of at most *chunk* rows each —
        one PREPARE plus ``ceil(n / chunk)`` EXECUTE round trips
        instead of *n* — and each frame commits atomically on the
        server's writer with a single NOW binding.
        """
        if chunk < 1:
            raise ValueError("chunk must be at least 1")
        rows = [
            [protocol.dump_value(value) for value in entry]
            for entry in seq_of_params
        ]
        total = 0
        for start in range(0, len(rows), chunk):
            response = self._round_trip({"many": rows[start:start + chunk]})
            total += max(0, response.get("rowcount") or 0)
        return total

    def deallocate(self) -> None:
        """Drop the server-side handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._connection._round_trip(
                {"op": "deallocate", "handle": self.handle}, retryable=False
            )
        except (TipError, OSError):
            pass  # the session (and with it the handle) is already gone

    close = deallocate

    def __enter__(self) -> "PreparedStatement":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.deallocate()


class RemoteResult:
    """One statement's outcome.

    When the profiler was active for the request, :attr:`profile`
    carries the server-side :class:`~repro.obs.profile.QueryProfile`,
    :attr:`client_profile` the client-side one, and :attr:`trace` the
    joined trace identity — the two profiles share one ``trace_id``.
    """

    def __init__(self, frame: dict) -> None:
        self.columns: List[str] = frame.get("columns", [])
        self.rows: List[Tuple] = [protocol.load_row(row) for row in frame.get("rows", [])]
        self.rowcount: int = frame.get("rowcount", -1)
        self.statement_now: Optional[str] = frame.get("statement_now")
        raw_profile = frame.get("profile")
        self.profile: Optional[QueryProfile] = (
            QueryProfile.from_dict(raw_profile) if isinstance(raw_profile, dict) else None
        )
        self.trace: Optional[dict] = frame.get("trace")
        self.client_profile: Optional[QueryProfile] = None


class RemoteTipConnection:
    """A TIP session over TCP, with retry, reconnect, and timeouts.

    *timeout* bounds connection establishment; *request_timeout* (same
    as *timeout* when omitted) bounds each round trip.  *retry* is the
    :class:`RetryPolicy`; *seed* fixes the jitter RNG for reproducible
    retry schedules (chaos tests pin it).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        *,
        request_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
        session_label: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._connect_timeout = timeout
        self._request_timeout = timeout if request_timeout is None else request_timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(seed)
        self._session_now: Optional[str] = None
        # The connection key the server books keyed fault injections
        # under; chaos tests label sessions so plans replay per
        # connection.  Sent in a HELLO frame on connect and reconnect.
        self._session_label = session_label
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._closed = False
        self._last_attempts = 1
        self._connect_with_retry()
        if self._session_label is not None:
            self._hello()

    # -- plumbing ------------------------------------------------------

    def _connect(self) -> None:
        if _FAULTS.plan is not None:
            _FAULTS.plan.apply("client.connect")
        self._socket = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._socket.settimeout(self._request_timeout)
        self._reader = self._socket.makefile("rb")

    def _connect_with_retry(self) -> None:
        last_error: Optional[BaseException] = None
        for attempt in range(self._retry.max_attempts):
            if attempt:
                time.sleep(self._retry.backoff_delay(attempt - 1, self._rng))
                if obs.state.enabled:
                    obs.counter("client.retries").inc()
            try:
                self._connect()
                return
            except OSError as exc:
                last_error = exc
        raise TipError(
            f"could not connect to {self._host}:{self._port} after "
            f"{self._retry.max_attempts} attempt(s): {last_error}"
        )

    def _drop_socket(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        self._reader = None
        self._socket = None

    def _reconnect(self) -> None:
        """Fresh connection + session state replay (the NOW override).

        The server's NOW override lives in the session, so a plain
        reconnect would silently change what ``NOW`` means for every
        replayed and subsequent statement.  Re-establishing it *before*
        the failed frame is replayed keeps retries semantically
        idempotent.
        """
        self._drop_socket()
        self._connect()
        if obs.state.enabled:
            obs.counter("client.reconnects").inc()
        if self._session_label is not None:
            self._hello()
        if self._session_now is not None:
            self._send({"op": "set_now", "now": self._session_now})
            response = self._recv()
            if not response.get("ok"):
                raise TipError(
                    "could not re-establish NOW override after reconnect: "
                    f"{response.get('error', 'unknown error')}"
                )

    def _hello(self) -> None:
        """Re-establish this session's connection key on the server."""
        self._send({"op": "hello", "session": self._session_label})
        response = self._recv()
        if not response.get("ok"):
            raise TipError(
                "could not establish session label: "
                f"{response.get('error', 'unknown error')}"
            )

    def _send(self, frame: dict) -> None:
        payload = protocol.dump_frame(frame)
        if _FAULTS.plan is not None:
            payload = _FAULTS.plan.apply("client.send", payload)
        self._socket.sendall(payload)

    def _recv(self) -> dict:
        line = self._reader.readline()
        if _FAULTS.plan is not None:
            line = _FAULTS.plan.apply("client.recv", line)
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            return protocol.load_frame(line)
        except protocol.ProtocolError as exc:
            # An unparseable response is transport corruption, not a
            # server verdict: retryable.
            raise ConnectionError(f"garbled response frame: {exc}") from exc

    def _round_trip(self, frame: dict, *, retryable: bool = True) -> dict:
        if self._closed:
            raise TipError("connection is closed")
        attempts = self._retry.max_attempts if retryable else 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            self._last_attempts = attempt + 1
            if attempt:
                delay = self._retry.backoff_delay(attempt - 1, self._rng)
                if delay:
                    time.sleep(delay)
                if obs.state.enabled:
                    obs.counter("client.retries").inc()
                try:
                    self._reconnect()
                except (OSError, TipError) as exc:
                    last_error = exc
                    continue
            try:
                self._send(frame)
                response = self._recv()
            except OSError as exc:
                last_error = exc
                continue
            if not response.get("ok"):
                error = RemoteError(
                    response.get("error", "unknown server error"),
                    response.get("kind", "Error"),
                )
                # retry_safe means the server never ran the request
                # (e.g. it arrived corrupted); replaying is harmless.
                if response.get("retry_safe") and attempt + 1 < attempts:
                    last_error = error
                    continue
                raise error
            return response
        raise TipError(f"request failed after {attempts} attempt(s): {last_error}")

    # -- the query surface -----------------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> RemoteResult:
        """Run one statement; TIP parameters travel in binary form.

        With the profiler on, the request carries this side's
        ``trace_id``/``span_id`` and asks the server for its profile,
        so the returned :class:`RemoteResult` holds both halves of one
        trace.  Profiler off: not a single extra Python-level call.
        """
        frame = {
            "op": "execute",
            "sql": sql,
            "params": [protocol.dump_value(value) for value in params],
        }
        if _PROFILE.enabled or _PROFILE.forced:
            return self._execute_profiled(frame, sql)
        return RemoteResult(self._round_trip(frame))

    def _execute_profiled(self, frame: dict, sql: str) -> RemoteResult:
        recorder = StatementRecorder(sql, engine="remote", side="client")
        frame["trace"] = {
            "trace_id": recorder.profile.trace_id,
            "span_id": recorder.profile.span_id,
        }
        frame["profile"] = True
        recorder.start()
        try:
            response = self._round_trip(frame)
        except Exception as exc:
            recorder.profile.retries = self._last_attempts - 1
            recorder.finish(ok=False, error=str(exc))
            raise
        recorder.profile.retries = self._last_attempts - 1
        result = RemoteResult(response)
        recorder.profile.rows = len(result.rows)
        result.client_profile = recorder.finish(
            rowcount=result.rowcount,
            statement_now=result.statement_now,
        )
        return result

    def execute_batch(self, statements) -> List["RemoteResult | RemoteError"]:
        """Run many statements in ONE round trip (the BATCH frame).

        *statements* is a sequence of ``sql`` strings or ``(sql,
        params)`` pairs.  Returns one entry per statement, in order: a
        :class:`RemoteResult` on success, a :class:`RemoteError`
        *instance* (not raised) on a per-statement failure — a failed
        statement never hides the results of the others.  The batch is
        observably equivalent to sending the same statements
        one-per-frame, just without paying a round trip each
        (property-tested in ``tests/test_protocol_pipeline.py``).
        """
        entries = []
        for statement in statements:
            if isinstance(statement, str):
                sql, params = statement, ()
            else:
                sql, params = statement
            entries.append({
                "sql": sql,
                "params": [protocol.dump_value(value) for value in params],
            })
        response = self._round_trip({"op": "batch", "statements": entries})
        results: List["RemoteResult | RemoteError"] = []
        for sub in response.get("results", []):
            if sub.get("ok"):
                results.append(RemoteResult(sub))
            else:
                results.append(RemoteError(
                    sub.get("error", "unknown server error"),
                    sub.get("kind", "Error"),
                ))
        return results

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile *sql* once on the server; returns the statement handle.

        Later :meth:`PreparedStatement.execute` calls skip the tSQL
        preprocessor and layered translation entirely — the hot path is
        a handle lookup plus parameter binding.
        """
        return PreparedStatement(self, sql)

    def executemany(self, sql: str, seq_of_params, *, chunk: int = 256) -> int:
        """Bulk-ingest: one PREPARE + batched EXECUTE frames.

        Prepares *sql*, ships the parameter rows in ``many`` frames of
        *chunk* rows each, deallocates, and returns the total affected
        row count.  Equivalent to a loop of :meth:`execute` calls, just
        without a translation or a round trip per row.
        """
        statement = self.prepare(sql)
        try:
            return statement.executemany(seq_of_params, chunk=chunk)
        finally:
            statement.deallocate()

    def stream(self, sql: str, params: Sequence = (), *,
               chunk: int = 256, window: int = 4):
        """Iterate a statement's rows as they stream off the server.

        The server sends ``chunk`` rows per continuation frame and at
        most ``window`` unacknowledged chunks; this iterator grants one
        credit per consumed chunk, so a slowly consumed stream bounds
        the server's buffering (backpressure) instead of materializing
        the result set anywhere.  Streams are not retried: a transport
        failure mid-stream surfaces as the underlying error.  Closing
        the iterator early drains the remaining frames to keep the
        session usable.
        """
        frame = {
            "op": "execute",
            "sql": sql,
            "params": [protocol.dump_value(value) for value in params],
            "stream": True,
            "chunk": chunk,
            "window": window,
        }
        if self._closed:
            raise TipError("connection is closed")
        self._send(frame)
        return self._stream_frames()

    def _stream_frames(self):
        done = False
        try:
            while True:
                response = self._recv()
                if response.get("cont") == "rows":
                    # Grant the next chunk *before* yielding, so the
                    # server fills the pipe while rows are consumed.
                    self._send({"op": "credit", "n": 1})
                    for row in response.get("rows", []):
                        yield protocol.load_row(row)
                    continue
                done = True
                if response.get("cont") == "done" and response.get("ok"):
                    return
                raise RemoteError(
                    response.get("error", "unexpected frame during stream"),
                    response.get("kind", "ProtocolError"),
                )
        finally:
            if not done:
                # Early close: drain the stream so the next request on
                # this session reads its own response, not stale chunks.
                self._drain_stream()

    def _drain_stream(self) -> None:
        try:
            while True:
                self._send({"op": "credit", "n": 1000})
                response = self._recv()
                if response.get("cont") != "rows":
                    return
        except (OSError, TipError):
            self._drop_socket()

    def query(self, sql: str, params: Sequence = ()) -> List[Tuple]:
        return self.execute(sql, params).rows

    def query_one(self, sql: str, params: Sequence = ()) -> Optional[Tuple]:
        rows = self.query(sql, params)
        return rows[0] if rows else None

    def set_now(self, now: "Chronon | str | None") -> None:
        """Override NOW for this session only (replayed on reconnect)."""
        text = str(now) if isinstance(now, Chronon) else now
        self._round_trip({"op": "set_now", "now": text})
        self._session_now = text

    @property
    def session_now(self) -> Optional[str]:
        """The session NOW override text, or None when tracking the
        wall clock — what :meth:`set_now` last established.  The linq
        builder's ``with_now`` combinator saves and restores this
        around one execution."""
        return self._session_now

    def linq(self) -> "object":
        """A typed query-builder front bound to this remote session.

        Schema discovery runs over the wire (one sqlite_master query);
        builder queries execute via :meth:`execute` or become cached
        :class:`PreparedStatement` handles via ``Query.prepare``.  See
        :mod:`repro.linq`.
        """
        from repro.linq import Linq  # lazy: avoids a client<->linq cycle

        return Linq(self)

    def metrics(self, *, reset: bool = False, trace_tail: int = 0) -> dict:
        """The server's METRICS frame: session ledger + global snapshot.

        Returns ``{"session": {...}, "metrics": {...}}`` (see
        :mod:`repro.server.protocol`).  *reset* clears the server's
        process-wide registry after the snapshot is taken (the
        response carries the pre-reset state); *trace_tail* asks for
        the last *n* trace spans.
        """
        frame = {"op": "metrics"}
        if reset:
            frame["reset"] = True
        if trace_tail:
            frame["trace_tail"] = trace_tail
        response = self._round_trip(frame)
        return {key: value for key, value in response.items() if key != "ok"}

    def profiles(self, *, last: int = 0, slow: bool = False) -> dict:
        """The server's PROFILE frame: recent (or slow-log) profiles.

        Returns ``{"enabled": ..., "slow_threshold": ...,
        "profiles": [...]}`` with profiles in wire (dict) form.
        """
        frame: dict = {"op": "profile"}
        if last:
            frame["last"] = last
        if slow:
            frame["slow"] = True
        response = self._round_trip(frame)
        return {key: value for key, value in response.items() if key != "ok"}

    def flight(
        self,
        *,
        last: int = 0,
        session: Optional[str] = None,
        trace: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> dict:
        """The server's FLIGHT frame: the event ring, filterable.

        Returns ``{"enabled": ..., "events": [...]}`` where each event
        is the wire form of a :class:`~repro.obs.flight.FlightEvent`
        (``seq`` / ``ts`` / ``kind`` / ``session`` / ``trace_id`` /
        ``data``).  Filters mirror the ``/debug/flight`` endpoint.
        """
        frame: dict = {"op": "flight"}
        if last:
            frame["last"] = last
        if session is not None:
            frame["session"] = session
        if trace is not None:
            frame["trace"] = trace
        if kind is not None:
            frame["kind"] = kind
        response = self._round_trip(frame)
        return {key: value for key, value in response.items() if key != "ok"}

    def ping(self) -> bool:
        return bool(self._round_trip({"op": "ping"}).get("pong"))

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._round_trip({"op": "close"}, retryable=False)
        except (TipError, OSError):
            pass
        finally:
            self._closed = True
            self._drop_socket()

    def __enter__(self) -> "RemoteTipConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
