"""Network access to a TIP-enabled database (Figure 1's client path).

In the paper, "client applications can connect directly to a
TIP-enabled database through a standard API such as ODBC or JDBC".
This package is that path for the reproduction: :class:`TipServer`
serves a TIP-enabled database over TCP with a JSON-line protocol, and
:class:`RemoteTipConnection` is the client-side driver exposing the
same query surface as a local :class:`~repro.client.TipConnection` —
TIP values travel in their binary format and come out as datatype
objects, and each remote session carries its own ``NOW`` override.
"""

from repro.server.client import RemoteTipConnection
from repro.server.server import TipServer

__all__ = ["TipServer", "RemoteTipConnection"]
