"""The wire protocol: newline-delimited JSON frames.

Requests::

    {"op": "execute", "sql": "...", "params": [...]}
    {"op": "batch", "statements": [{"sql": "...", "params": [...]}, ...]}
    {"op": "prepare", "sql": "..."}            # compile once, get a handle
    {"op": "execute_prepared", "handle": h, "params": [...]}
    {"op": "execute_prepared", "handle": h, "many": [[...], ...]}
    {"op": "deallocate", "handle": h}          # drop the handle
    {"op": "set_now", "now": "1999-09-01"}     # null clears the override
    {"op": "hello", "session": "label"}        # name the connection key
    {"op": "metrics"}                          # the METRICS frame
    {"op": "profile"}                          # the PROFILE frame
    {"op": "flight"}                           # the FLIGHT frame
    {"op": "credit", "n": k}                   # mid-stream backpressure grant
    {"op": "ping"}
    {"op": "close"}

Responses::

    {"ok": true, "rows": [...], "columns": [...], "rowcount": n,
     "statement_now": "..."}
    {"ok": false, "error": "message", "kind": "OperationalError"}

**Pipelining.**  A ``BATCH`` frame carries many statements in one round
trip; the response carries one execute-shaped result per statement, in
order, and a failed statement never aborts the rest::

    {"ok": true, "results": [{"ok": true, "rows": [...], ...},
                             {"ok": false, "error": "...", "kind": "..."},
                             ...]}

**Streaming.**  An ``execute`` with ``"stream": true`` (optional
``"chunk"`` rows per frame, ``"window"`` initial credit in chunks)
answers with zero or more ``ROWS`` continuation frames followed by one
``DONE`` frame::

    {"ok": true, "cont": "rows", "rows": [...]}        # <= chunk rows
    {"ok": true, "cont": "done", "columns": [...],
     "rowcount": n, "rows_streamed": n, "statement_now": "..."}

The server sends at most ``window`` chunks ahead of the client's
acknowledgements; the client grants more with ``{"op": "credit",
"n": k}`` frames as it consumes (one credit = one chunk), so a slow
consumer bounds the server's buffering instead of the other way
around.  A chunk that would exceed the frame bound is split down to
single rows; a single row that still cannot fit ends the stream with a
typed mid-stream failure ``{"ok": false, "cont": "done", "kind":
"FrameTooLarge"}``.  Any non-credit frame sent mid-stream aborts the
stream with a typed ``ProtocolError`` DONE (the offending frame is
consumed, the session survives).

**Prepared statements.**  ``PREPARE`` compiles one statement (tSQL
modifiers included) through the server's compiled-statement cache
(:mod:`repro.tsql.compiled`) and answers with a session-scoped handle,
the translated SQL, the positional parameter count, and the registry
generation the plan was compiled under::

    {"ok": true, "handle": 1, "sql": "SELECT ...", "params": 2,
     "generation": 7}

``execute_prepared`` binds ``params`` to the handle's plan and answers
execute-shaped; with ``many`` (a list of parameter rows) the plan runs
under ``executemany`` on the writer — one NOW binding, one commit —
and the response carries the cumulative ``rowcount`` plus ``count``
(rows of parameters consumed).  ``deallocate`` drops the handle.
Handles are private to the session that prepared them and die with the
connection.  Typed errors, both ``retry_safe`` (the statement provably
did not run):

* ``UnknownStatement`` — the handle was never prepared on this
  session, or was deallocated (a reconnect loses all handles);
* ``StaleStatement`` — the temporal-table registry or schema changed
  (DDL, ``register()``) after the plan was compiled; re-prepare.

**HELLO.**  ``{"op": "hello", "session": "label"}`` names the
session's *connection key* — the identity under which the keyed fault
points (``pool.checkout``, ``wal.checkpoint``) book their per-connection
hit sequences.  Unlabelled sessions get a per-server ordinal key.

**Trace propagation.**  An ``execute`` request may carry a trace
context and ask for the statement's profile::

    {"op": "execute", "sql": "...",
     "trace": {"trace_id": "<hex128>", "span_id": "<hex64>"},
     "profile": true}

The server adopts ``trace_id`` and runs the statement as a child span
of ``span_id``, so the client-side and server-side spans of one
statement form a single trace.  When a profile was collected (the
server profiler is on, or ``"profile": true`` forced a one-shot), the
response gains::

    {"ok": true, ...,
     "profile": { ... QueryProfile.as_dict() ... },
     "trace": {"trace_id": "...", "span_id": "<server span>",
               "parent_span_id": "<client span>"}}

**The PROFILE frame** returns the server's recent per-statement
profiles (``{"op": "profile", "last": n, "slow": true}`` selects the
slow-query log instead)::

    {"ok": true, "enabled": true, "slow_threshold": 0.5,
     "profiles": [{"sql": ..., "wall_seconds": ...,
                   "routines": {...}, ...}, ...]}

**The FLIGHT frame** returns the server's flight-recorder ring — the
bounded timeline of structured events (statement begin/end, batch and
stream lifecycle, pool checkouts and writer waits, WAL checkpoints,
cache traffic, fired faults; see :mod:`repro.obs.flight`).  Optional
request fields filter: ``"last": n`` (newest *n* events),
``"session"`` (one connection key), ``"trace"`` (one trace id), and
``"kind"`` (exact kind or dotted prefix, e.g. ``"stmt"``)::

    {"ok": true, "enabled": true,
     "events": [{"seq": 1, "ts": 12.345, "kind": "stmt.begin",
                 "session": "s1", "data": {"sql": "SELECT ..."}}, ...]}

Error responses may carry ``"retry_safe": true`` when the server can
guarantee the request was **never executed** (it could not even be
parsed), so a hardened client may replay it without risking a double
apply.  Frames are bounded: a request line longer than the server's
``max_frame_bytes`` yields ``{"ok": false, "kind": "FrameTooLarge",
"retry_safe": false}`` after the server drains to the next newline, and
the session stays usable.  A partial frame followed by EOF (a peer that
died mid-send) closes the session cleanly — no response, no traceback.

The METRICS frame returns the observability state of the server
process and of the requesting session::

    {"ok": true,
     "session": {"id": 3, "frames": n, "execute": n, "errors": n,
                 "rows": n, "seconds": s},
     "metrics": {"enabled": true,
                 "counters": {"server.frame.execute.calls": n, ...},
                 "histograms": {"blade.routine.tunion.seconds":
                                {"count": n, "sum": s, "min": s,
                                 "max": s, "mean": s, "buckets": {...}},
                                ...}}}

``session`` is the requesting session's own ledger (frames counted
before this METRICS frame itself); ``metrics`` is the process-wide
:mod:`repro.obs` snapshot, including per-routine blade call counts and
latencies.  The response also carries ``"pool"`` — the dispatch
layer's obs-independent gauges (readers, checkouts, waits, max busy,
writes, checkpoints; see :meth:`repro.server.pool.ConnectionPool.stats`).  Optional request fields: ``"reset": true`` clears the
process-wide registry first; ``"trace_tail": n`` appends the last *n*
trace spans under ``metrics.trace``.

TIP values (in params and in result rows) are framed as
``{"$tip": "<base64 of the binary encoding>"}``; byte strings as
``{"$bytes": ...}``; everything else is plain JSON.
"""

from __future__ import annotations

import base64
import json
from typing import Any, List, Sequence

from repro import codec
from repro.errors import TipError

__all__ = [
    "dump_value", "load_value", "dump_frame", "load_frame",
    "read_frame_line", "ProtocolError", "FrameTooLarge", "MAX_FRAME_BYTES",
]

_TIP_TYPES = tuple(codec.binary.TAG_BY_TYPE)

#: Default bound on one wire frame (requests and responses alike).
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(TipError):
    """A malformed frame arrived on the wire."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded the configured size bound."""


def dump_value(value: Any) -> Any:
    """Encode one value for a JSON frame."""
    if isinstance(value, _TIP_TYPES):
        return {"$tip": base64.b64encode(codec.encode(value)).decode("ascii")}
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(f"value of type {type(value).__name__} is not transportable")


def load_value(value: Any) -> Any:
    """Decode one value from a JSON frame."""
    if isinstance(value, dict):
        if "$tip" in value:
            return codec.decode(base64.b64decode(value["$tip"]))
        if "$bytes" in value:
            return base64.b64decode(value["$bytes"])
        raise ProtocolError(f"unknown value envelope: {sorted(value)}")
    return value


def dump_row(row: Sequence) -> List[Any]:
    # Most rows are all plain JSON scalars; one isinstance scan beats
    # the per-value type dispatch of dump_value on the batch hot path.
    for value in row:
        if value is not None and not isinstance(value, (str, int, float)):
            return [dump_value(value) for value in row]
    return list(row)


def load_row(row: Sequence) -> tuple:
    for value in row:
        if isinstance(value, dict):
            return tuple(load_value(value) for value in row)
    return tuple(row)


def dump_frame(frame: dict) -> bytes:
    """Serialize one frame to its wire form (JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def load_frame(line: bytes) -> dict:
    """Parse one wire line into a frame."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def read_frame_line(rfile, limit: int = MAX_FRAME_BYTES):
    """Read one bounded frame line; returns ``(status, payload)``.

    Statuses:

    * ``("frame", line)`` — a complete, in-bound line (newline included);
    * ``("eof", b"")`` — clean end of stream between frames;
    * ``("partial", data)`` — the peer disconnected mid-frame: bytes
      arrived but the stream ended before the newline;
    * ``("oversized", b"")`` — the line exceeded *limit* bytes.  The
      stream has been drained up to the next newline (or EOF), so the
      caller can answer with a typed error and keep the session.

    Blank lines are skipped here so every returned frame is substantive.
    """
    while True:
        line = rfile.readline(limit + 1)
        if not line:
            return "eof", b""
        if len(line) > limit:
            # Drain the rest of the oversized frame to resynchronize.
            while line and not line.endswith(b"\n"):
                line = rfile.readline(limit + 1)
            return "oversized", b""
        if not line.endswith(b"\n"):
            return "partial", line
        if line.strip():
            return "frame", line
