"""Read/write dispatch over a WAL reader pool.

The server used to funnel every statement of every session through one
shared engine connection behind a global lock, so concurrent clients
serialized completely.  This module replaces that lock with SQLite's
actual concurrency model:

* the database runs in **WAL mode**, where any number of readers
  proceed concurrently with one writer;
* a **pool of reader connections** (the TIP blade installed on each,
  ``PRAGMA query_only`` armed so a misrouted write fails loudly) serves
  read statements — an idle reader is checked out per statement, the
  session's ``NOW`` override applied at checkout, and returned after
  the fetch;
* a **single writer connection** behind its own lock serves write
  statements, preserving the one total write order SQLite enforces
  anyway (writer linearizability comes for free);
* after each committed write the pool attempts a **passive WAL
  checkpoint** (every :attr:`ConnectionPool.checkpoint_every`-th write),
  so the log never grows without bound.

**Classification** (:func:`classify`) is lexical and fails safe: a
statement is a *read* only when its first keyword (after comments) is
``SELECT``, ``VALUES``, or ``EXPLAIN`` — or ``WITH`` whose body
contains no write verb.  Everything else, including ``PRAGMA`` and
anything unrecognized, routes to the writer, which can execute reads
too; the only unsafe misclassification (a write sent to a reader) is
additionally caught by ``query_only``.

**In-memory databases** cannot share a WAL across connections, so
``:memory:`` pools degenerate to the writer alone — exactly the old
serialized model, same semantics, no surprises for tests.

**Observability** (inert when :mod:`repro.obs` is off):
``server.pool.checkout.calls`` / ``.waits`` /
``server.pool.checkout.wait_seconds`` /
``server.pool.readers.busy`` (a histogram of how many readers were
already busy at each checkout — its max is the measured concurrency),
``server.pool.reads`` / ``.writes``, ``server.wal.checkpoints`` /
``server.wal.checkpoint.errors``.  :meth:`ConnectionPool.stats` reports
the same numbers obs-independently for benchmarks.

**Fault injection**: ``pool.checkout`` fires before each reader
checkout and ``wal.checkpoint`` after each write commit, both keyed by
the session's connection key, so a seeded chaos plan fires
deterministically per connection no matter how the scheduler
interleaves sessions (:mod:`repro.faults.plan`).
"""

from __future__ import annotations

import re
import threading
from collections import deque
from contextlib import contextmanager
from functools import lru_cache
from time import perf_counter
from typing import Iterator, Optional

import repro
from repro import obs
from repro.client.connection import TipConnection
from repro.faults import InjectedFault
from repro.faults import state as _FAULTS
from repro.obs import flight as _flight

__all__ = ["classify", "ConnectionPool"]

#: First-keyword verbs that start a read-only statement.  The TSQL2
#: statement modifiers are read verbs too: the preprocessor only
#: accepts ``SELECT`` after them (anything else fails typed before
#: execution), so a modified statement always translates to a read —
#: classifying on the raw text keeps prepared/batched temporal queries
#: on the reader pool.
_READ_VERBS = frozenset(
    {"SELECT", "VALUES", "EXPLAIN", "SNAPSHOT", "VALIDTIME", "NONSEQUENCED"}
)

#: Verbs that make a WITH statement a write when present in its body.
_WRITE_VERBS_RE = re.compile(
    r"\b(INSERT|UPDATE|DELETE|REPLACE|CREATE|DROP|ALTER)\b", re.IGNORECASE
)

_COMMENT_RE = re.compile(r"\s*(?:--[^\n]*\n|/\*.*?\*/)", re.DOTALL)
_FIRST_WORD_RE = re.compile(r"[A-Za-z_]+")


@lru_cache(maxsize=1024)
def classify(sql: str) -> str:
    """``"read"`` or ``"write"`` for one SQL statement, failing safe.

    Reads fan out to pool readers; everything classified ``"write"``
    serializes on the writer connection.  Misrouting a read to the
    writer merely loses parallelism, so every doubtful case (``WITH``
    bodies containing write verbs, ``PRAGMA``, unparseable text) is a
    write.  Pure in the statement text, so repeated statements (a
    pipelined batch, a prepared-style workload) pay the lexing once.
    """
    position = 0
    while True:
        match = _COMMENT_RE.match(sql, position)
        if match is None:
            break
        position = match.end()
    match = _FIRST_WORD_RE.search(sql, position)
    word = match.group(0).upper() if match else ""
    if word in _READ_VERBS:
        return "read"
    if word == "WITH" and not _WRITE_VERBS_RE.search(sql, match.end()):
        return "read"
    return "write"


class ConnectionPool:
    """A writer connection plus *readers* pooled reader connections.

    All connections open the same *database* with the blade installed
    (:func:`repro.connect`); cross-thread use is safe because a
    connection is only ever used by the thread that holds it checked
    out.  For non-WAL-able databases (``:memory:``) the pool holds the
    writer only and :meth:`read` falls through to :meth:`write`.
    """

    def __init__(
        self,
        database: str = ":memory:",
        readers: int = 4,
        *,
        checkpoint_every: int = 32,
        busy_timeout_ms: int = 5000,
    ) -> None:
        if readers < 0:
            raise ValueError("readers must be >= 0")
        self.database = database
        self.checkpoint_every = max(1, checkpoint_every)
        self.writer: TipConnection = repro.connect(database, check_same_thread=False)
        self.writer.raw.execute(f"PRAGMA busy_timeout={busy_timeout_ms}")
        (journal_mode,) = self.writer.raw.execute("PRAGMA journal_mode=WAL").fetchone()
        self.wal: bool = str(journal_mode).lower() == "wal"
        if self.wal:
            # NORMAL is WAL's intended durability point: fsync on
            # checkpoint, not on every commit.
            self.writer.raw.execute("PRAGMA synchronous=NORMAL")
        self.readers: int = readers if self.wal else 0
        self._writer_lock = threading.Lock()
        self._cond = threading.Condition(threading.Lock())
        self._idle: deque = deque()
        for _ in range(self.readers):
            reader = repro.connect(database, check_same_thread=False)
            reader.raw.execute(f"PRAGMA busy_timeout={busy_timeout_ms}")
            reader.raw.execute("PRAGMA query_only=ON")
            self._idle.append(reader)
        self._all_readers = list(self._idle)
        self._closed = False
        # Obs-independent gauges (the bench runs with obs off).
        self._checkouts = 0
        self._waits = 0
        self._max_busy = 0
        self._reads = 0
        self._writes = 0
        self._checkpoints = 0
        self._checkpoint_errors = 0

    # -- dispatch ------------------------------------------------------

    @contextmanager
    def read(
        self, session_now: Optional[int] = None, key: Optional[str] = None
    ) -> Iterator[TipConnection]:
        """Check a reader out for one statement (the session NOW applied).

        Waits when all readers are busy (the wait is counted and
        timed).  Without readers (``:memory:``), defers to the writer.
        """
        if not self.readers:
            with self.write(session_now, key) as connection:
                yield connection
            return
        if _FAULTS.plan is not None:
            _FAULTS.plan.apply("pool.checkout", key=key)
        connection = self._checkout(key)
        try:
            connection.set_now(session_now)  # seconds (or None) directly
            yield connection
        finally:
            try:
                # An abandoned cursor (e.g. a stream cut short) pins a
                # read snapshot; closing it here keeps every checkout
                # reading the latest committed state.
                connection.rollback()
            except Exception:
                pass
            with self._cond:
                self._idle.append(connection)
                self._cond.notify()

    @contextmanager
    def write(
        self, session_now: Optional[int] = None, key: Optional[str] = None
    ) -> Iterator[TipConnection]:
        """The writer connection, exclusively, for one statement.

        The lock spans execute *and* commit, so write statements of
        different sessions never interleave mid-transaction — the
        single total write order the linearizability test asserts.
        """
        # Writer-lock contention is invisible to counters but exactly
        # what a timeline wants: record the wait before blocking.
        if _flight.state.enabled and self._writer_lock.locked():
            _flight.record("pool.writer.wait", session=key)
        with self._writer_lock:
            with self._cond:
                self._writes += 1
            if obs.state.enabled:
                obs.counter("server.pool.writes").inc()
            self.writer.set_now(session_now)  # seconds (or None) directly
            yield self.writer

    def _checkout(self, key: Optional[str] = None) -> TipConnection:
        enabled = obs.state.enabled
        with self._cond:
            busy = self.readers - len(self._idle)
            waited = not self._idle
            self._checkouts += 1
            self._reads += 1
            if busy > self._max_busy:
                self._max_busy = busy
            if enabled:
                obs.counter("server.pool.checkout.calls").inc()
                obs.counter("server.pool.reads").inc()
                obs.histogram("server.pool.readers.busy").observe(float(busy))
            if not self._idle:
                self._waits += 1
                if enabled:
                    obs.counter("server.pool.checkout.waits").inc()
                waited_from = perf_counter()
                while not self._idle:
                    self._cond.wait(timeout=1.0)
                    if self._closed:
                        raise RuntimeError("pool closed while waiting for a reader")
                if enabled:
                    obs.histogram("server.pool.checkout.wait_seconds").observe(
                        perf_counter() - waited_from
                    )
            connection = self._idle.popleft()
        if _flight.state.enabled:
            _flight.record("pool.checkout", session=key, busy=busy, waited=waited)
        return connection

    # -- WAL maintenance ----------------------------------------------

    def after_write_commit(self, key: Optional[str] = None) -> None:
        """Passive checkpoint cadence; call with the writer lock held.

        The ``wal.checkpoint`` fault point fires here on *every* write
        (keyed, so per-connection hit counts equal per-connection write
        counts — deterministic); the physical checkpoint runs every
        :attr:`checkpoint_every`-th write globally.  An injected
        failure only defers the checkpoint: the write itself is already
        committed and WAL recovers on the next cadence.
        """
        if not self.wal:
            return
        if _FAULTS.plan is not None:
            try:
                _FAULTS.plan.apply("wal.checkpoint", key=key)
            except InjectedFault:
                with self._cond:
                    self._checkpoint_errors += 1
                if obs.state.enabled:
                    obs.counter("server.wal.checkpoint.errors").inc()
                if _flight.state.enabled:
                    _flight.record("wal.checkpoint", session=key, status="injected")
                return
        with self._cond:
            due = self._writes % self.checkpoint_every == 0
        if not due:
            return
        self.writer.raw.execute("PRAGMA wal_checkpoint(PASSIVE)").fetchone()
        with self._cond:
            self._checkpoints += 1
        if obs.state.enabled:
            obs.counter("server.wal.checkpoints").inc()
        if _flight.state.enabled:
            _flight.record("wal.checkpoint", session=key, status="ran")

    # -- inspection and lifecycle --------------------------------------

    def stats(self) -> dict:
        """The pool gauges as plain data (obs-independent)."""
        with self._cond:
            return {
                "wal": self.wal,
                "readers": self.readers,
                "checkouts": self._checkouts,
                "waits": self._waits,
                "max_busy": self._max_busy,
                "reads": self._reads,
                "writes": self._writes,
                "checkpoints": self._checkpoints,
                "checkpoint_errors": self._checkpoint_errors,
            }

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for reader in self._all_readers:
            reader.close()
        self.writer.close()
