"""The TIP database server.

A threading TCP server over one shared TIP-enabled connection.  SQLite
serializes writers anyway, so a single engine connection guarded by a
lock is the honest concurrency model; per-session state (the ``NOW``
override) is applied under that lock before each statement, so remote
sessions get independent temporal contexts — the Browser's what-if
override works per client.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

import repro
from repro.core.chronon import Chronon
from repro.core.parser import parse_chronon
from repro.errors import TipError
from repro.server import protocol

__all__ = ["TipServer"]


class _SessionHandler(socketserver.StreamRequestHandler):
    """One connected client: a loop of frames until close/EOF."""

    server: "_InnerServer"

    def handle(self) -> None:
        session_now: Optional[int] = None
        while True:
            line = self.rfile.readline()
            if not line:
                return
            if not line.strip():
                continue
            try:
                frame = protocol.load_frame(line)
                response, session_now, done = self._dispatch(frame, session_now)
            except protocol.ProtocolError as exc:
                response, done = {"ok": False, "error": str(exc), "kind": "ProtocolError"}, False
            except Exception as exc:  # never kill the session thread silently
                response, done = {"ok": False, "error": str(exc), "kind": type(exc).__name__}, False
            self.wfile.write(protocol.dump_frame(response))
            self.wfile.flush()
            if done:
                return

    def _dispatch(self, frame: dict, session_now: Optional[int]):
        op = frame.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}, session_now, False
        if op == "close":
            return {"ok": True, "closed": True}, session_now, True
        if op == "set_now":
            raw = frame.get("now")
            if raw is None:
                return {"ok": True, "now": None}, None, False
            try:
                seconds = parse_chronon(raw).seconds
            except TipError as exc:
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}, \
                    session_now, False
            return {"ok": True, "now": raw}, seconds, False
        if op == "execute":
            return self._execute(frame, session_now), session_now, False
        return (
            {"ok": False, "error": f"unknown op {op!r}", "kind": "ProtocolError"},
            session_now,
            False,
        )

    def _execute(self, frame: dict, session_now: Optional[int]) -> dict:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            return {"ok": False, "error": "execute needs a sql string", "kind": "ProtocolError"}
        try:
            params = tuple(protocol.load_value(v) for v in frame.get("params", []))
        except protocol.ProtocolError as exc:
            return {"ok": False, "error": str(exc), "kind": "ProtocolError"}
        owner = self.server.owner
        with owner.lock:
            connection = owner.connection
            try:
                connection.set_now(None if session_now is None else Chronon(session_now))
                cursor = connection.execute(sql, params)
                if cursor.description is None:
                    connection.commit()
                    return {
                        "ok": True,
                        "rows": [],
                        "columns": [],
                        "rowcount": cursor.rowcount,
                        "statement_now": str(cursor.statement_now),
                    }
                rows = cursor.fetchall()
                return {
                    "ok": True,
                    "rows": [protocol.dump_row(row) for row in rows],
                    "columns": [entry[0] for entry in cursor.description],
                    "rowcount": len(rows),
                    "statement_now": str(cursor.statement_now),
                }
            except Exception as exc:  # surface engine errors to the client
                connection.rollback()
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}


class _InnerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], owner: "TipServer") -> None:
        super().__init__(address, _SessionHandler)
        self.owner = owner


class TipServer:
    """Serve one TIP-enabled database over TCP.

    >>> server = TipServer(":memory:")         # port 0 = pick a free one
    >>> server.start()
    >>> host, port = server.address
    >>> ... RemoteTipConnection(host, port) ...
    >>> server.stop()

    Also usable as a context manager.
    """

    def __init__(self, database: str = ":memory:", host: str = "127.0.0.1", port: int = 0) -> None:
        # Handler threads share this one engine connection under the
        # lock, so SQLite's same-thread check must be relaxed here.
        self.connection = repro.connect(database, check_same_thread=False)
        self.lock = threading.Lock()
        self._inner = _InnerServer((host, port), self)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._inner.server_address[:2]

    def start(self) -> "TipServer":
        """Serve in a background thread; returns self."""
        if self._thread is not None:
            raise TipError("server already started")
        self._thread = threading.Thread(target=self._inner.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and the engine connection."""
        self._inner.shutdown()
        self._inner.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.connection.close()

    def __enter__(self) -> "TipServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
