"""The TIP database server.

A threading TCP server over one shared TIP-enabled connection.  SQLite
serializes writers anyway, so a single engine connection guarded by a
lock is the honest concurrency model; per-session state (the ``NOW``
override) is applied under that lock before each statement, so remote
sessions get independent temporal contexts — the Browser's what-if
override works per client.

Observability: the server times every frame and keeps two ledgers —

* **per-session counters** (frames, executes, errors, rows, seconds),
  owned by the single handler thread of that session, so attribution
  is exact by construction;
* **process-wide metrics** in :mod:`repro.obs` (``server.frame.<op>``
  call counts and latency histograms, session totals), shared across
  sessions and lock-protected per instrument, so no update is lost
  even while the engine lock is contended.

Both are readable over the wire via the ``METRICS`` frame
(``{"op": "metrics"}`` — see :mod:`repro.server.protocol`).
"""

from __future__ import annotations

import itertools
import socketserver
import threading
from time import perf_counter
from typing import Optional, Tuple

import repro
from repro import codec, obs
from repro.core.chronon import Chronon
from repro.core.parser import parse_chronon
from repro.errors import TipError
from repro.faults import state as _FAULTS
from repro.obs import profile as _profile
from repro.server import protocol

__all__ = ["TipServer"]

_SESSION_IDS = itertools.count(1)


class _SessionHandler(socketserver.StreamRequestHandler):
    """One connected client: a loop of frames until close/EOF.

    The loop never lets a peer problem escape as an exception: partial
    frames, oversized frames, undecodable bytes, and write failures all
    end in either a typed error frame or a clean close, so a misbehaving
    client cannot wedge its session, crash the handler thread, or leak a
    session from the ledger (``server.sessions.closed`` always catches
    up with ``server.sessions.opened``).
    """

    server: "_InnerServer"

    def handle(self) -> None:
        self.session_now: Optional[int] = None
        self.session_id = next(_SESSION_IDS)
        self.session_counters = {
            "frames": 0, "execute": 0, "errors": 0, "rows": 0, "seconds": 0.0,
            "degraded": 0,
        }
        if obs.state.enabled:
            obs.counter("server.sessions.opened").inc()
        try:
            self._frame_loop()
        finally:
            if obs.state.enabled:
                obs.counter("server.sessions.closed").inc()

    def _frame_loop(self) -> None:
        limit = self.server.owner.max_frame_bytes
        while True:
            try:
                status, line = protocol.read_frame_line(self.rfile, limit)
            except OSError:
                return  # transport died mid-read: nothing to answer
            if status == "eof":
                return
            if status == "partial":
                # The peer vanished mid-frame; there is no one to answer.
                self._degrade("server.frame.partial")
                return
            if status == "oversized":
                self._degrade("server.frame.oversized")
                if not self._respond({
                    "ok": False,
                    "error": f"frame exceeds the {limit}-byte bound",
                    "kind": "FrameTooLarge",
                    "retry_safe": False,
                }):
                    return
                continue
            if _FAULTS.plan is not None:
                try:
                    line = _FAULTS.plan.apply("server.frame.read", line)
                except ConnectionError:
                    return  # injected peer failure on the read path
            started = perf_counter()
            op = "?"
            try:
                frame = protocol.load_frame(line)
                op = str(frame.get("op"))
                response, done = self._dispatch(frame)
            except protocol.ProtocolError as exc:
                # The frame never parsed, so it provably did not run:
                # safe for the client to replay.
                response, done = {
                    "ok": False, "error": str(exc), "kind": "ProtocolError",
                    "retry_safe": True,
                }, False
            except Exception as exc:  # never kill the session thread silently
                response, done = {"ok": False, "error": str(exc), "kind": type(exc).__name__}, False
            self._account(op, response, perf_counter() - started)
            if not self._respond(response) or done:
                return

    def _respond(self, response: dict) -> bool:
        """Write one response frame; False when the peer is unreachable."""
        payload = protocol.dump_frame(response)
        try:
            if _FAULTS.plan is not None:
                payload = _FAULTS.plan.apply("server.frame.write", payload)
            self.wfile.write(payload)
            self.wfile.flush()
        except OSError:
            return False  # peer gone (or injected to be): close cleanly
        return True

    def _degrade(self, counter_name: str) -> None:
        """Account one gracefully degraded frame in both ledgers."""
        self.session_counters["degraded"] += 1
        if obs.state.enabled:
            obs.counter(counter_name).inc()

    def _account(self, op: str, response: dict, seconds: float) -> None:
        """Update both metric ledgers for one completed frame."""
        counters = self.session_counters
        counters["frames"] += 1
        counters["seconds"] += seconds
        ok = bool(response.get("ok"))
        if not ok:
            counters["errors"] += 1
        # DDL reports rowcount -1; only count real row traffic.
        rows = max(0, response.get("rowcount") or 0) if op == "execute" and ok else 0
        if op == "execute":
            counters["execute"] += 1
            counters["rows"] += rows
        if obs.state.enabled:
            registry = obs.get_registry()
            registry.counter(f"server.frame.{op}.calls").inc()
            registry.histogram(f"server.frame.{op}.seconds").observe(seconds)
            if not ok:
                registry.counter(f"server.frame.{op}.errors").inc()
            if rows:
                registry.counter("server.rows_returned").add(rows)

    def _dispatch(self, frame: dict) -> Tuple[dict, bool]:
        op = frame.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "close":
            return {"ok": True, "closed": True}, True
        if op == "metrics":
            return self._metrics(frame), False
        if op == "profile":
            return self._profile_frame(frame), False
        if op == "set_now":
            raw = frame.get("now")
            if raw is None:
                self.session_now = None
                return {"ok": True, "now": None}, False
            try:
                seconds = parse_chronon(raw).seconds
            except TipError as exc:
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}, False
            self.session_now = seconds
            return {"ok": True, "now": raw}, False
        if op == "execute":
            return self._execute(frame), False
        return (
            {"ok": False, "error": f"unknown op {op!r}", "kind": "ProtocolError"},
            False,
        )

    def _metrics(self, frame: dict) -> dict:
        """The METRICS frame: this session's ledger + the global snapshot."""
        snapshot = obs.snapshot(trace_tail=int(frame.get("trace_tail", 0) or 0))
        if frame.get("reset"):
            # Read-and-reset: the response carries the pre-reset state
            # (registry, trace-independent cache stats included).
            obs.get_registry().reset()
            codec.clear_caches(reset_stats=True)
        return {
            "ok": True,
            "session": {"id": self.session_id, **self.session_counters},
            "metrics": snapshot,
        }

    def _profile_frame(self, frame: dict) -> dict:
        """The PROFILE frame: recent (or slow) query profiles."""
        last = int(frame.get("last", 0) or 0) or None
        if frame.get("slow"):
            profiles = _profile.slow_log(last)
        else:
            profiles = _profile.recent_profiles(last)
        return {
            "ok": True,
            "enabled": _profile.state.enabled,
            "slow_threshold": _profile.state.slow_threshold,
            "profiles": [entry.as_dict() for entry in profiles],
        }

    def _execute(self, frame: dict) -> dict:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            return {"ok": False, "error": "execute needs a sql string", "kind": "ProtocolError"}
        try:
            params = tuple(protocol.load_value(v) for v in frame.get("params", []))
        except protocol.ProtocolError as exc:
            return {"ok": False, "error": str(exc), "kind": "ProtocolError"}
        # Trace context: the client's ids make the server-side span a
        # child of the client-side span — one trace across the wire.
        trace = frame.get("trace")
        trace_id = trace.get("trace_id") if isinstance(trace, dict) else None
        parent_span = trace.get("span_id") if isinstance(trace, dict) else None
        want_profile = bool(frame.get("profile"))
        owner = self.server.owner
        session_now = self.session_now
        with owner.lock:
            connection = owner.connection
            try:
                connection.set_now(None if session_now is None else Chronon(session_now))
                with _profile.activate_context(trace_id, parent_span, side="server"):
                    if want_profile and not _profile.state.enabled:
                        # One-shot profile on request; the engine lock
                        # serializes statements, so the brief forced
                        # window cannot catch another session's work.
                        with _profile.forced():
                            cursor = connection.execute(sql, params)
                    else:
                        cursor = connection.execute(sql, params)
                if cursor.description is None:
                    connection.commit()
                    return self._execute_response(
                        cursor, rows=[], columns=[], rowcount=cursor.rowcount
                    )
                rows = cursor.fetchall()
                return self._execute_response(
                    cursor,
                    rows=[protocol.dump_row(row) for row in rows],
                    columns=[entry[0] for entry in cursor.description],
                    rowcount=len(rows),
                )
            except Exception as exc:  # surface engine errors to the client
                connection.rollback()
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}

    @staticmethod
    def _execute_response(cursor, *, rows, columns, rowcount) -> dict:
        response = {
            "ok": True,
            "rows": rows,
            "columns": columns,
            "rowcount": rowcount,
            "statement_now": str(cursor.statement_now),
        }
        if cursor.profile is not None:
            # Fetches above already charged their rows/time, so the
            # framed profile is the statement's complete server cost.
            response["profile"] = cursor.profile.as_dict()
            response["trace"] = {
                "trace_id": cursor.profile.trace_id,
                "span_id": cursor.profile.span_id,
                "parent_span_id": cursor.profile.parent_span_id,
            }
        return response


class _InnerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], owner: "TipServer") -> None:
        super().__init__(address, _SessionHandler)
        self.owner = owner


class TipServer:
    """Serve one TIP-enabled database over TCP.

    >>> server = TipServer(":memory:")         # port 0 = pick a free one
    >>> server.start()
    >>> host, port = server.address
    >>> ... RemoteTipConnection(host, port) ...
    >>> server.stop()

    Also usable as a context manager.
    """

    def __init__(
        self,
        database: str = ":memory:",
        host: str = "127.0.0.1",
        port: int = 0,
        observability: bool = True,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        profiling: bool = False,
        slow_threshold: "float | None" = None,
        slow_sink: "str | None" = None,
    ) -> None:
        # Handler threads share this one engine connection under the
        # lock, so SQLite's same-thread check must be relaxed here.
        self.connection = repro.connect(database, check_same_thread=False)
        self.lock = threading.Lock()
        # Bound on one request line; larger frames get a typed
        # FrameTooLarge error instead of unbounded buffering.
        self.max_frame_bytes = max_frame_bytes
        self._inner = _InnerServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        # The server is the natural observability surface: it answers
        # METRICS frames, so by default it flips the process-wide
        # switch on.  Pass observability=False to leave it untouched.
        if observability:
            obs.enable()
        # Per-statement profiling is opt-in (it snapshots the registry
        # around every statement); clients can still request one-shot
        # profiles per execute frame while it is off.
        if profiling:
            _profile.enable(slow_threshold=slow_threshold, sink=slow_sink)
        elif slow_threshold is not None or slow_sink is not None:
            _profile.configure(slow_threshold=slow_threshold, sink=slow_sink)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._inner.server_address[:2]

    def start(self) -> "TipServer":
        """Serve in a background thread; returns self."""
        if self._thread is not None:
            raise TipError("server already started")
        # A tight poll interval keeps stop() prompt (the default 0.5s
        # poll dominates short-lived servers, e.g. per-test instances).
        self._thread = threading.Thread(
            target=lambda: self._inner.serve_forever(poll_interval=0.05), daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and the engine connection."""
        self._inner.shutdown()
        self._inner.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.connection.close()

    def __enter__(self) -> "TipServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
