"""The TIP database server.

A threading TCP server dispatching over a **WAL reader pool**
(:mod:`repro.server.pool`).  Each statement is classified read vs
write: reads check an idle reader connection out of the pool (the
session's ``NOW`` override applied per checkout), so concurrent
sessions' reads overlap on real cores; writes serialize on the single
dedicated writer connection, whose lock spans execute + commit — the
one total write order that makes writer history linearizable.
In-memory databases cannot share a WAL, so ``:memory:`` servers keep
the old single-connection serialized model with identical semantics.

The wire protocol is **pipelined** (:mod:`repro.server.protocol`):

* a ``BATCH`` frame carries many statements in one round trip and
  returns per-statement results, so throughput is no longer bounded by
  client round-trip latency;
* a streaming ``execute`` (``"stream": true``) returns large results
  as ``ROWS`` continuation chunks followed by a ``DONE`` frame, under
  a client-granted credit window — the server never buffers more than
  one chunk ahead of a slow client, and a chunk that would exceed the
  frame bound splits (down to one row) before failing typed
  (``FrameTooLarge``) mid-stream;
* ``PREPARE`` / ``EXECUTE`` (``execute_prepared``) / ``DEALLOCATE``
  frames carry prepared statements: PREPARE compiles once through the
  statement cache (:mod:`repro.tsql.compiled`) and returns a
  session-scoped integer handle, EXECUTE binds positional parameters
  (or a ``many`` list of parameter rows for bulk ingest) to the
  compiled plan, DEALLOCATE drops the handle.  Handles live in the
  session's private table — they are invisible to other sessions and
  die with the connection — and a handle compiled before a DDL or
  registry change answers with a typed ``StaleStatement`` error so the
  client re-prepares against the current schema.

Every execute-shaped statement (ad-hoc, batched, streamed, prepared)
is translated through the same compiled-statement cache, so tSQL
statement modifiers work over the wire and textually-identical hot
statements skip the preprocessor after their first compile.

Observability: the server times every frame and keeps two ledgers —

* **per-session counters** (frames, executes, errors, rows, seconds),
  owned by the single handler thread of that session, so attribution
  is exact by construction even though the engine connections
  underneath are pooled;
* **process-wide metrics** in :mod:`repro.obs` (``server.frame.<op>``
  call counts and latency histograms, session totals, and the pool
  gauges ``server.pool.*`` / ``server.wal.*``).

Both are readable over the wire via the ``METRICS`` frame.  Fault
injection at ``pool.checkout`` / ``wal.checkpoint`` is keyed by the
session's connection key (settable via the ``hello`` frame), so seeded
chaos plans fire deterministically per connection.
"""

from __future__ import annotations

import itertools
import socketserver
import threading
from contextlib import nullcontext
from time import perf_counter
from typing import List, Optional, Tuple

from repro import codec, obs
from repro.core.formatter import chronon_text
from repro.core.parser import parse_chronon
from repro.errors import TipError
from repro.faults import state as _FAULTS
from repro.obs import flight as _flight
from repro.obs import profile as _profile
from repro.obs.http import TelemetryServer
from repro.plan import planner as _planner
from repro.server import protocol
from repro.server.pool import ConnectionPool, classify
from repro.tsql import compiled as _compiled

__all__ = ["TipServer"]

_SESSION_IDS = itertools.count(1)

#: Dispatch sentinel: the frame was consumed but gets no response (a
#: surplus credit frame arriving after its stream already finished —
#: answering it would desynchronize the client's request/response
#: pairing).
_SWALLOW: dict = {}

#: Streaming defaults: rows per ROWS chunk, and the initial credit
#: window (in chunks) when the client does not size one.
DEFAULT_STREAM_CHUNK = 256
DEFAULT_STREAM_WINDOW = 4


class _SessionHandler(socketserver.StreamRequestHandler):
    """One connected client: a loop of frames until close/EOF.

    The loop never lets a peer problem escape as an exception: partial
    frames, oversized frames, undecodable bytes, and write failures all
    end in either a typed error frame or a clean close, so a misbehaving
    client cannot wedge its session, crash the handler thread, or leak a
    session from the ledger (``server.sessions.closed`` always catches
    up with ``server.sessions.opened``).
    """

    server: "_InnerServer"

    def handle(self) -> None:
        self.session_now: Optional[int] = None
        self.session_id = next(_SESSION_IDS)
        # Prepared statements are session-private: handle -> compiled
        # plan, numbered from 1 per session so handles are small,
        # deterministic, and meaningless to any other session.
        self.prepared: dict = {}
        self._handle_ids = itertools.count(1)
        # The fault key: stable per-server ordinal by default, or the
        # label a `hello` frame sets — chaos tests label their sessions
        # so keyed fault plans replay per connection across runs.
        ordinal = self.server.owner._next_session_ordinal()
        self.fault_key = f"s{ordinal}"
        self.session_counters = {
            "frames": 0, "execute": 0, "errors": 0, "rows": 0, "seconds": 0.0,
            "degraded": 0,
        }
        if obs.state.enabled:
            obs.counter("server.sessions.opened").inc()
        if _flight.state.enabled:
            # The per-server ordinal, not the process-global session id:
            # flight timelines must replay identically across seeded
            # runs, and the ordinal is a pure function of this server's
            # own accept sequence.
            _flight.record("session.open", session=self.fault_key,
                           id=ordinal)
        try:
            self._frame_loop()
        finally:
            if obs.state.enabled:
                obs.counter("server.sessions.closed").inc()
            if _flight.state.enabled:
                _flight.record("session.close", session=self.fault_key,
                               frames=self.session_counters["frames"],
                               errors=self.session_counters["errors"])

    def _frame_loop(self) -> None:
        limit = self.server.owner.max_frame_bytes
        while True:
            try:
                status, line = protocol.read_frame_line(self.rfile, limit)
            except OSError:
                return  # transport died mid-read: nothing to answer
            if status == "eof":
                return
            if status == "partial":
                # The peer vanished mid-frame; there is no one to answer.
                self._degrade("server.frame.partial")
                return
            if status == "oversized":
                self._degrade("server.frame.oversized")
                if not self._respond({
                    "ok": False,
                    "error": f"frame exceeds the {limit}-byte bound",
                    "kind": "FrameTooLarge",
                    "retry_safe": False,
                }):
                    return
                continue
            if _FAULTS.plan is not None:
                try:
                    line = _FAULTS.plan.apply("server.frame.read", line)
                except ConnectionError:
                    return  # injected peer failure on the read path
            started = perf_counter()
            op = "?"
            try:
                frame = protocol.load_frame(line)
                op = str(frame.get("op"))
                response, done = self._dispatch(frame)
            except protocol.ProtocolError as exc:
                # The frame never parsed, so it provably did not run:
                # safe for the client to replay.
                response, done = {
                    "ok": False, "error": str(exc), "kind": "ProtocolError",
                    "retry_safe": True,
                }, False
            except Exception as exc:  # never kill the session thread silently
                response, done = {"ok": False, "error": str(exc), "kind": type(exc).__name__}, False
                if _flight.state.enabled:
                    # An unhandled server error is exactly what the
                    # flight ring exists for: record it, then dump the
                    # whole timeline if a crash path is configured.
                    _flight.record("server.error", session=self.fault_key,
                                   op=op, error=type(exc).__name__)
                    _flight.crash_dump(
                        f"unhandled {type(exc).__name__} during {op} frame",
                        error=str(exc),
                    )
            if response is None:
                return  # a streaming op lost its peer mid-stream
            if response is _SWALLOW:
                continue  # consumed without a response (late credits)
            self._account(op, response, perf_counter() - started)
            if not self._respond(response) or done:
                return

    def _respond(self, response: dict) -> bool:
        """Write one response frame; False when the peer is unreachable."""
        payload = protocol.dump_frame(response)
        try:
            if _FAULTS.plan is not None:
                payload = _FAULTS.plan.apply("server.frame.write", payload)
            self.wfile.write(payload)
            self.wfile.flush()
        except OSError:
            return False  # peer gone (or injected to be): close cleanly
        return True

    def _degrade(self, counter_name: str) -> None:
        """Account one gracefully degraded frame in both ledgers."""
        self.session_counters["degraded"] += 1
        if obs.state.enabled:
            obs.counter(counter_name).inc()

    def _account(self, op: str, response: dict, seconds: float) -> None:
        """Update both metric ledgers for one completed frame."""
        counters = self.session_counters
        counters["frames"] += 1
        counters["seconds"] += seconds
        ok = bool(response.get("ok"))
        if not ok:
            counters["errors"] += 1
        # DDL reports rowcount -1; only count real row traffic.
        executes = op in ("execute", "execute_prepared")
        rows = max(0, response.get("rowcount") or 0) if executes and ok else 0
        if executes:
            counters["execute"] += 1
            counters["rows"] += rows
        elif op == "batch" and ok:
            # A batch is one frame but many statements: the ledger
            # counts each statement as an execute, with per-statement
            # errors and row traffic, so attribution stays exact.
            for sub in response.get("results", []):
                counters["execute"] += 1
                if sub.get("ok"):
                    sub_rows = max(0, sub.get("rowcount") or 0)
                    counters["rows"] += sub_rows
                    rows += sub_rows
                else:
                    counters["errors"] += 1
        if obs.state.enabled:
            registry = obs.get_registry()
            registry.counter(f"server.frame.{op}.calls").inc()
            registry.histogram(f"server.frame.{op}.seconds").observe(seconds)
            if not ok:
                registry.counter(f"server.frame.{op}.errors").inc()
            if rows:
                registry.counter("server.rows_returned").add(rows)
            if op == "batch" and ok:
                registry.counter("server.batch.statements").add(
                    len(response.get("results", []))
                )

    def _dispatch(self, frame: dict) -> Tuple[Optional[dict], bool]:
        op = frame.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "close":
            return {"ok": True, "closed": True}, True
        if op == "hello":
            return self._hello(frame), False
        if op == "metrics":
            return self._metrics(frame), False
        if op == "profile":
            return self._profile_frame(frame), False
        if op == "flight":
            return self._flight_frame(frame), False
        if op == "set_now":
            raw = frame.get("now")
            if raw is None:
                self.session_now = None
                return {"ok": True, "now": None}, False
            try:
                seconds = parse_chronon(raw).seconds
            except TipError as exc:
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}, False
            self.session_now = seconds
            return {"ok": True, "now": raw}, False
        if op == "execute":
            if frame.get("stream"):
                return self._execute_stream(frame), False
            return self._execute(frame), False
        if op == "batch":
            return self._batch(frame), False
        if op == "prepare":
            return self._prepare(frame), False
        if op == "execute_prepared":
            return self._execute_prepared(frame), False
        if op == "deallocate":
            return self._deallocate(frame), False
        if op == "credit":
            # Credits are only read mid-stream; the surplus a client
            # granted near the end of a stream arrives here afterwards
            # and must be swallowed without a response.
            return _SWALLOW, False
        return (
            {"ok": False, "error": f"unknown op {op!r}", "kind": "ProtocolError"},
            False,
        )

    def _hello(self, frame: dict) -> dict:
        """The HELLO frame: names this session's fault/connection key."""
        label = frame.get("session")
        if label is not None:
            if not isinstance(label, str) or not label:
                return {"ok": False, "error": "hello needs a non-empty session string",
                        "kind": "ProtocolError"}
            self.fault_key = label
        return {"ok": True, "session": self.fault_key, "id": self.session_id}

    def _metrics(self, frame: dict) -> dict:
        """The METRICS frame: this session's ledger + the global snapshot."""
        snapshot = obs.snapshot(trace_tail=int(frame.get("trace_tail", 0) or 0))
        if frame.get("reset"):
            # Read-and-reset: the response carries the pre-reset state
            # (registry, trace-independent cache stats included).
            obs.get_registry().reset()
            codec.clear_caches(reset_stats=True)
            _compiled.clear_cache(reset_stats=True)
            _flight.clear()
        return {
            "ok": True,
            "session": {"id": self.session_id, **self.session_counters},
            "pool": self.server.owner.pool.stats(),
            "metrics": snapshot,
        }

    def _flight_frame(self, frame: dict) -> dict:
        """The FLIGHT frame: the event ring, filterable, in wire form."""
        return {
            "ok": True,
            "enabled": _flight.state.enabled,
            "events": _flight.snapshot(
                kind=frame.get("kind") or None,
                session=frame.get("session") or None,
                trace_id=frame.get("trace") or None,
                last=int(frame.get("last", 0) or 0) or None,
            ),
        }

    def _profile_frame(self, frame: dict) -> dict:
        """The PROFILE frame: recent (or slow) query profiles."""
        last = int(frame.get("last", 0) or 0) or None
        if frame.get("slow"):
            profiles = _profile.slow_log(last)
        else:
            profiles = _profile.recent_profiles(last)
        return {
            "ok": True,
            "enabled": _profile.state.enabled,
            "slow_threshold": _profile.state.slow_threshold,
            "profiles": [entry.as_dict() for entry in profiles],
        }

    # -- statement execution ------------------------------------------

    def _parse_execute(self, frame: dict):
        """Validate one execute-shaped frame; (sql, params) or error dict."""
        sql = frame.get("sql")
        if not isinstance(sql, str):
            return None, {"ok": False, "error": "execute needs a sql string",
                          "kind": "ProtocolError"}
        try:
            params = tuple(protocol.load_value(v) for v in frame.get("params", []))
        except protocol.ProtocolError as exc:
            return None, {"ok": False, "error": str(exc), "kind": "ProtocolError"}
        return (sql, params), None

    def _connection_ctx(self, sql: str):
        """The pooled connection context for *sql*: reader or writer."""
        owner = self.server.owner
        if classify(sql) == "read":
            return owner.pool.read(self.session_now, self.fault_key), False
        return owner.pool.write(self.session_now, self.fault_key), True

    def _compile(self, sql: str):
        """Compile *sql* through the statement cache; (plan, error dict)."""
        try:
            return self.server.owner.compiler.compile(sql), None
        except TipError as exc:
            return None, {"ok": False, "error": str(exc),
                          "kind": type(exc).__name__, "retry_safe": True}

    def _execute(self, frame: dict, reader=None, plan=None) -> dict:
        parsed, error = self._parse_execute(frame)
        if error is not None:
            return error
        sql, params = parsed
        # Every statement goes through the compiled-statement cache:
        # tSQL modifiers translate here (a hot statement is a cache
        # hit), plain SQL passes through unchanged.
        if plan is None:
            plan, error = self._compile(sql)
            if error is not None:
                return error
        sql = plan.sql
        # Trace context: the client's ids make the server-side span a
        # child of the client-side span — one trace across the wire.
        trace = frame.get("trace")
        trace_id = trace.get("trace_id") if isinstance(trace, dict) else None
        parent_span = trace.get("span_id") if isinstance(trace, dict) else None
        want_profile = bool(frame.get("profile"))
        if not _flight.state.enabled:
            return self._run_execute(sql, params, plan, trace_id, parent_span,
                                     want_profile, reader)
        _flight.record("stmt.begin", session=self.fault_key, trace_id=trace_id,
                       sql=sql[:120])
        try:
            response = self._run_execute(sql, params, plan, trace_id,
                                         parent_span, want_profile, reader)
        except Exception as exc:
            # The exception is about to travel up to the frame loop's
            # crash hook; a dangling stmt.begin would leave the timeline
            # ambiguous, so close the statement explicitly first.
            _flight.record("stmt.end", session=self.fault_key, trace_id=trace_id,
                           ok=False, error=type(exc).__name__)
            raise
        _flight.record("stmt.end", session=self.fault_key, trace_id=trace_id,
                       ok=bool(response.get("ok")),
                       rowcount=response.get("rowcount", -1))
        return response

    def _run_execute(self, sql, params, plan, trace_id, parent_span,
                     want_profile, reader) -> dict:
        owner = self.server.owner
        if reader is not None and classify(sql) == "read":
            # A batch read-run already holds this reader checked out;
            # reuse it rather than cycling the pool per statement.
            context, is_write = nullcontext(reader), False
        else:
            context, is_write = self._connection_ctx(sql)
        with context as connection:
            try:
                cursor = connection.cursor()
                if (trace_id is None and parent_span is None and not want_profile
                        and not _profile.state.enabled and not _profile.state.forced):
                    # No trace to adopt and nothing recording: skip the
                    # context plumbing entirely (it is generator-based
                    # and would cost a few microseconds per statement
                    # on the pipelined hot path for nothing).
                    if not params and plan is not None \
                            and plan.shape is not None:
                        # The temporal planner may take the whole
                        # statement (set-based kernel over this same
                        # checked-out connection, shape matched at
                        # compile time); None means run it normally.
                        result = _planner.maybe_execute_kernel(
                            connection, sql, shape=plan.shape
                        )
                        if result is not None:
                            return {
                                "ok": True,
                                "rows": [protocol.dump_row(row)
                                         for row in result.rows],
                                "columns": result.columns,
                                "rowcount": len(result.rows),
                                "statement_now":
                                    chronon_text(result.now_seconds),
                            }
                    rows = cursor.execute_fetchall(sql, params)
                else:
                    with _profile.activate_context(trace_id, parent_span, side="server"):
                        if want_profile and not _profile.state.enabled:
                            # One-shot profile on request; the checked-out
                            # connection is exclusively this statement's, so
                            # the brief forced window cannot catch another
                            # session's work on it.
                            with _profile.forced():
                                rows = cursor.execute_fetchall(sql, params)
                        else:
                            rows = cursor.execute_fetchall(sql, params)
                if rows is None:
                    connection.commit()
                    if is_write:
                        owner.pool.after_write_commit(self.fault_key)
                    if plan.ddl:
                        # Schema moved: orphan every compiled plan (and
                        # stale every prepared handle) process-wide.
                        _compiled.bump_generation()
                    return self._execute_response(
                        cursor, rows=[], columns=[], rowcount=cursor.rowcount
                    )
                return self._execute_response(
                    cursor,
                    rows=[protocol.dump_row(row) for row in rows],
                    columns=[entry[0] for entry in cursor.description],
                    rowcount=len(rows),
                )
            except Exception as exc:  # surface engine errors to the client
                connection.rollback()
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}

    def _batch(self, frame: dict) -> dict:
        """The BATCH frame: many statements, one round trip.

        Statements run in order; each gets an execute-shaped result and
        a failure never aborts the rest (the per-statement results say
        what failed).  Reads and writes may mix — each statement is
        dispatched through the pool independently.
        """
        statements = frame.get("statements")
        if not isinstance(statements, list):
            return {"ok": False, "error": "batch needs a statements list",
                    "kind": "ProtocolError"}
        pool = self.server.owner.pool
        if _flight.state.enabled:
            _flight.record("batch.begin", session=self.fault_key,
                           count=len(statements))

        def is_read(entry) -> bool:
            return (isinstance(entry, dict)
                    and isinstance(entry.get("sql"), str)
                    and classify(entry["sql"]) == "read")

        results: List[dict] = []
        index = 0
        while index < len(statements):
            if pool.readers and is_read(statements[index]):
                # A run of consecutive reads shares one checked-out
                # reader: checkout, NOW re-bind, and check-in are paid
                # once per run instead of once per statement — the
                # pipelined path's throughput lives here.
                with pool.read(self.session_now, self.fault_key) as reader:
                    while index < len(statements) and is_read(statements[index]):
                        results.append(self._execute(statements[index],
                                                     reader=reader))
                        index += 1
                continue
            entry = statements[index]
            if not isinstance(entry, dict):
                results.append({"ok": False, "error": "batch entry must be an object",
                                "kind": "ProtocolError"})
            else:
                results.append(self._execute(entry))
            index += 1
        if _flight.state.enabled:
            _flight.record("batch.end", session=self.fault_key,
                           count=len(results),
                           errors=sum(1 for r in results if not r.get("ok")))
        return {"ok": True, "results": results}

    # -- prepared statements ------------------------------------------

    def _prepare(self, frame: dict) -> dict:
        """The PREPARE frame: compile once, hand back a session handle.

        The response carries the translated SQL, the positional
        parameter count, and the registry generation the plan was
        compiled under — enough for the client to introspect the plan
        and to understand a later ``StaleStatement`` answer.
        """
        sql = frame.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return {"ok": False, "error": "prepare needs a sql string",
                    "kind": "ProtocolError"}
        plan, error = self._compile(sql)
        if error is not None:
            return error
        handle = next(self._handle_ids)
        self.prepared[handle] = plan
        return {"ok": True, "handle": handle, "sql": plan.sql,
                "params": plan.params, "generation": plan.generation}

    def _resolve_handle(self, frame: dict):
        """The live compiled plan for a frame's handle; (plan, error dict).

        Unknown handles (never prepared, deallocated, or prepared on a
        previous connection) and stale handles (the registry generation
        moved under them) both answer typed and ``retry_safe`` — the
        statement provably did not run, so the client may re-prepare
        and re-execute.
        """
        handle = frame.get("handle")
        plan = self.prepared.get(handle)
        if plan is None:
            return None, {
                "ok": False,
                "error": f"unknown prepared-statement handle {handle!r}",
                "kind": "UnknownStatement", "retry_safe": True,
            }
        if plan.generation != _compiled.generation():
            return None, {
                "ok": False,
                "error": "prepared statement is stale "
                         "(schema or temporal registry changed); re-prepare",
                "kind": "StaleStatement", "retry_safe": True,
            }
        return plan, None

    def _execute_prepared(self, frame: dict) -> dict:
        """The EXECUTE frame: bind parameters to a prepared handle.

        ``params`` runs the plan once (the ordinary execute path, reader
        pool included); ``many`` runs it under ``executemany`` on the
        writer — one NOW binding, one commit — for bulk ingest.
        """
        plan, error = self._resolve_handle(frame)
        if error is not None:
            return error
        if frame.get("many") is not None:
            return self._execute_many(frame, plan)
        sub = {"sql": plan.sql, "params": frame.get("params", [])}
        for field in ("trace", "profile"):
            if field in frame:
                sub[field] = frame[field]
        return self._execute(sub, plan=plan)

    def _execute_many(self, frame: dict, plan) -> dict:
        many = frame.get("many")
        if not isinstance(many, list) or not all(
            isinstance(entry, list) for entry in many
        ):
            return {"ok": False,
                    "error": "executemany needs a list of parameter rows",
                    "kind": "ProtocolError"}
        try:
            rows = [tuple(protocol.load_value(v) for v in entry) for entry in many]
        except protocol.ProtocolError as exc:
            return {"ok": False, "error": str(exc), "kind": "ProtocolError"}
        if _flight.state.enabled:
            _flight.record("stmt.many", session=self.fault_key,
                           sql=plan.sql[:120], count=len(rows))
        owner = self.server.owner
        with owner.pool.write(self.session_now, self.fault_key) as connection:
            try:
                cursor = connection.cursor()
                cursor.executemany(plan.sql, rows)
                connection.commit()
                owner.pool.after_write_commit(self.fault_key)
                if plan.ddl:
                    _compiled.bump_generation()
                return {"ok": True, "rows": [], "columns": [],
                        "rowcount": cursor.rowcount, "count": len(rows),
                        "statement_now": cursor.statement_now_text}
            except Exception as exc:
                connection.rollback()
                return {"ok": False, "error": str(exc), "kind": type(exc).__name__}

    def _deallocate(self, frame: dict) -> dict:
        """The DEALLOCATE frame: drop a handle from the session table."""
        handle = frame.get("handle")
        if handle in self.prepared:
            del self.prepared[handle]
            return {"ok": True, "deallocated": handle}
        return {"ok": False,
                "error": f"unknown prepared-statement handle {handle!r}",
                "kind": "UnknownStatement", "retry_safe": True}

    # -- streaming ----------------------------------------------------

    def _execute_stream(self, frame: dict) -> Optional[dict]:
        """A streaming execute: ROWS chunks under a credit window, then DONE.

        Returns the final DONE frame for the ordinary respond/account
        path (its ``rowcount`` carries the streamed total), or None when
        the peer vanished mid-stream (the caller closes the session).
        """
        parsed, error = self._parse_execute(frame)
        if error is not None:
            return error
        sql, params = parsed
        plan, error = self._compile(sql)
        if error is not None:
            return error
        sql = plan.sql
        if not _flight.state.enabled:
            return self._run_stream(frame, sql, params, plan)
        _flight.record("stream.begin", session=self.fault_key, sql=sql[:120])
        response = self._run_stream(frame, sql, params, plan)
        if response is None:  # peer vanished mid-stream
            _flight.record("stream.end", session=self.fault_key,
                           ok=False, peer_lost=True)
        else:
            _flight.record("stream.end", session=self.fault_key,
                           ok=bool(response.get("ok")),
                           rows_streamed=response.get("rows_streamed", 0))
        return response

    def _run_stream(self, frame: dict, sql: str, params, plan) -> Optional[dict]:
        chunk = max(1, min(int(frame.get("chunk", 0) or DEFAULT_STREAM_CHUNK), 10_000))
        credit = max(1, min(int(frame.get("window", 0) or DEFAULT_STREAM_WINDOW), 1_000))
        context, is_write = self._connection_ctx(sql)
        owner = self.server.owner
        streamed = 0
        with context as connection:
            try:
                cursor = connection.execute(sql, params)
                if cursor.description is None:
                    connection.commit()
                    if is_write:
                        owner.pool.after_write_commit(self.fault_key)
                    if plan.ddl:
                        _compiled.bump_generation()
                    return {"ok": True, "cont": "done", "rows_streamed": 0,
                            "columns": [], "rowcount": cursor.rowcount,
                            "statement_now": cursor.statement_now_text}
                columns = [entry[0] for entry in cursor.description]
                while True:
                    rows = cursor.fetchmany(chunk)
                    if not rows:
                        break
                    pending = [protocol.dump_row(row) for row in rows]
                    while pending:
                        if credit <= 0:
                            credit = self._await_credit()
                            if credit is None:
                                return None  # peer gone mid-stream
                            if credit < 0:
                                return {"ok": False, "cont": "done",
                                        "rows_streamed": streamed,
                                        "error": "expected a credit frame during stream",
                                        "kind": "ProtocolError"}
                        sent, pending = self._send_chunk(pending)
                        if sent is None:
                            return None
                        if sent < 0:
                            return {"ok": False, "cont": "done",
                                    "rows_streamed": streamed,
                                    "error": "a single row exceeds the frame bound",
                                    "kind": "FrameTooLarge"}
                        streamed += sent
                        credit -= 1
                return {"ok": True, "cont": "done", "columns": columns,
                        "rowcount": streamed, "rows_streamed": streamed,
                        "statement_now": cursor.statement_now_text}
            except Exception as exc:
                connection.rollback()
                return {"ok": False, "cont": "done", "rows_streamed": streamed,
                        "error": str(exc), "kind": type(exc).__name__}

    def _send_chunk(self, rows: List[list]):
        """Send one ROWS frame within the bound; ``(sent, remaining)``.

        Splits oversized chunks in half until they fit; a single row
        that cannot fit reports ``(-1, rows)`` so the stream fails
        typed.  ``(None, rows)`` means the peer is unreachable.
        """
        limit = self.server.owner.max_frame_bytes
        take = len(rows)
        while take >= 1:
            payload = protocol.dump_frame(
                {"ok": True, "cont": "rows", "rows": rows[:take]}
            )
            if len(payload) <= limit:
                try:
                    if _FAULTS.plan is not None:
                        payload = _FAULTS.plan.apply("server.frame.write", payload)
                    self.wfile.write(payload)
                    self.wfile.flush()
                except OSError:
                    return None, rows
                return take, rows[take:]
            if take == 1:
                return -1, rows
            take = take // 2
        return 0, rows

    def _await_credit(self) -> Optional[int]:
        """Block for the client's next credit frame; its grant (chunks).

        None: the peer is gone.  -1: the client sent a non-credit frame
        mid-stream (a protocol violation surfaced as a typed DONE).
        """
        limit = self.server.owner.max_frame_bytes
        try:
            status, line = protocol.read_frame_line(self.rfile, limit)
        except OSError:
            return None
        if status in ("eof", "partial"):
            self._degrade("server.frame.partial")
            return None
        if status == "oversized":
            self._degrade("server.frame.oversized")
            return -1
        try:
            frame = protocol.load_frame(line)
        except protocol.ProtocolError:
            return -1
        if frame.get("op") != "credit":
            return -1
        try:
            grant = int(frame.get("n", 1))
        except (TypeError, ValueError):
            return -1
        return max(1, min(grant, 1_000))

    @staticmethod
    def _execute_response(cursor, *, rows, columns, rowcount) -> dict:
        response = {
            "ok": True,
            "rows": rows,
            "columns": columns,
            "rowcount": rowcount,
            "statement_now": cursor.statement_now_text,
        }
        if cursor.profile is not None:
            # Fetches above already charged their rows/time, so the
            # framed profile is the statement's complete server cost.
            response["profile"] = cursor.profile.as_dict()
            response["trace"] = {
                "trace_id": cursor.profile.trace_id,
                "span_id": cursor.profile.span_id,
                "parent_span_id": cursor.profile.parent_span_id,
            }
        return response


class _InnerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], owner: "TipServer") -> None:
        super().__init__(address, _SessionHandler)
        self.owner = owner


class TipServer:
    """Serve one TIP-enabled database over TCP.

    >>> server = TipServer("tip.db", readers=4)  # port 0 = pick a free one
    >>> server.start()
    >>> host, port = server.address
    >>> ... RemoteTipConnection(host, port) ...
    >>> server.stop()

    *readers* sizes the WAL reader pool for file-backed databases
    (``:memory:`` always runs the single serialized writer, whatever
    *readers* says, because an in-memory database cannot share a WAL).
    Also usable as a context manager.
    """

    def __init__(
        self,
        database: str = ":memory:",
        host: str = "127.0.0.1",
        port: int = 0,
        observability: bool = True,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        profiling: bool = False,
        slow_threshold: "float | None" = None,
        slow_sink: "str | None" = None,
        readers: int = 4,
        checkpoint_every: int = 32,
        telemetry_port: "int | None" = None,
        flight_recorder: "bool | None" = None,
        flight_dump: "str | None" = None,
    ) -> None:
        # The dispatch layer: reads fan out to pooled readers, writes
        # serialize on the writer.  Handler threads never share a
        # checked-out connection, so no statement-level lock remains.
        self.pool = ConnectionPool(
            database, readers=readers, checkpoint_every=checkpoint_every
        )
        # One schema-aware compile front for the whole server: every
        # execute-shaped frame (ad-hoc, batch, stream, prepared) is
        # translated through the process-wide statement cache, and the
        # validity-column registry rescans lazily when a DDL commit
        # bumps the cache generation.
        self.compiler = _compiled.StatementCompiler(self.pool.writer)
        self._session_ordinals = itertools.count(1)
        # Bound on one request line; larger frames get a typed
        # FrameTooLarge error instead of unbounded buffering.
        self.max_frame_bytes = max_frame_bytes
        self._inner = _InnerServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        # The server is the natural observability surface: it answers
        # METRICS frames, so by default it flips the process-wide
        # switch on.  Pass observability=False to leave it untouched.
        if observability:
            obs.enable()
        # The flight recorder rides the observability switch by default
        # (always-on diagnostics is the point); *flight_recorder*
        # overrides in either direction, and *flight_dump* arms the
        # crash hook: an unhandled error in a session thread dumps the
        # whole ring to that JSONL path.
        if flight_recorder if flight_recorder is not None else observability:
            _flight.enable()
        if flight_dump is not None:
            _flight.configure(crash_dump_path=flight_dump)
        # Per-statement profiling is opt-in (it snapshots the registry
        # around every statement); clients can still request one-shot
        # profiles per execute frame while it is off.
        if profiling:
            _profile.enable(slow_threshold=slow_threshold, sink=slow_sink)
        elif slow_threshold is not None or slow_sink is not None:
            _profile.configure(slow_threshold=slow_threshold, sink=slow_sink)
        # The telemetry endpoint (None = off): started/stopped with the
        # query listener, scraping the same process state over HTTP.
        self._telemetry_port = telemetry_port
        self._telemetry_host = host
        self.telemetry: Optional[TelemetryServer] = None

    @property
    def connection(self):
        """The writer connection (kept for embedding/test callers)."""
        return self.pool.writer

    def _next_session_ordinal(self) -> int:
        """Per-server session ordinal — the default fault-key suffix."""
        return next(self._session_ordinals)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._inner.server_address[:2]

    def start(self) -> "TipServer":
        """Serve in a background thread; returns self."""
        if self._thread is not None:
            raise TipError("server already started")
        # A tight poll interval keeps stop() prompt (the default 0.5s
        # poll dominates short-lived servers, e.g. per-test instances).
        self._thread = threading.Thread(
            target=lambda: self._inner.serve_forever(poll_interval=0.05), daemon=True
        )
        self._thread.start()
        if self._telemetry_port is not None:
            self.telemetry = TelemetryServer(
                self._telemetry_host, self._telemetry_port,
                pool_stats=self.pool.stats,
            ).start()
        return self

    @property
    def telemetry_address(self) -> Optional[Tuple[str, int]]:
        """The telemetry endpoint's bound (host, port), when serving."""
        return self.telemetry.address if self.telemetry is not None else None

    def stop(self) -> None:
        """Shut down the listener and the engine connections."""
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None
        self._inner.shutdown()
        self._inner.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "TipServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
