"""TIP: a temporal extension to an extensible relational DBMS.

Reproduction of Yang, Ying & Widom, *TIP: A Temporal Extension to
Informix* (SIGMOD 2000).  The public API:

* the five temporal datatypes and ``NOW`` — :mod:`repro.core`;
* the DataBlade framework and the TIP blade — :mod:`repro.blade`;
* the client library (``connect``) — :mod:`repro.client`;
* the TIP Browser — :mod:`repro.browser`;
* the layered-architecture baseline — :mod:`repro.layered`;
* temporal warehouse views — :mod:`repro.warehouse`;
* deterministic fault injection — :mod:`repro.faults`;
* workload generators — :mod:`repro.workload`;
* the temporal index — :mod:`repro.index`;
* TSQL2 statement modifiers — :mod:`repro.tsql`.
"""

from repro.core import NOW, Chronon, Element, Instant, Period, Span, current_now, use_now
from repro.errors import TipError

__version__ = "1.0.0"

__all__ = [
    "Chronon",
    "Span",
    "Instant",
    "NOW",
    "Period",
    "Element",
    "current_now",
    "use_now",
    "TipError",
    "connect",
    "__version__",
]


def connect(database: str = ":memory:", **kwargs):
    """Open a TIP-enabled database connection.

    Convenience re-export of :func:`repro.client.connect`; imports the
    client lazily so pure-algebra users never touch sqlite3.
    """
    from repro.client import connect as _connect

    return _connect(database, **kwargs)
