"""SQL literal rendering for TIP values.

Parameter binding (``?`` placeholders) is always preferable, but the
paper's examples write temporal constants inline as quoted strings —
``'{[1999-10-01, NOW]}'`` — relying on the engine's implicit string
casts.  :func:`literal` renders any supported Python value in exactly
that style, with proper SQL quoting, for code generation (the layered
translator uses it) and for interactive use.
"""

from __future__ import annotations

from repro.core.chronon import Chronon
from repro.core.element import Element
from repro.core.instant import Instant
from repro.core.period import Period
from repro.core.span import Span
from repro.errors import TipTypeError

__all__ = ["literal", "quote_string"]

_TIP_TYPES = (Chronon, Span, Instant, Period, Element)


def quote_string(text: str) -> str:
    """Single-quote *text* for SQL, doubling embedded quotes."""
    return "'" + text.replace("'", "''") + "'"


def literal(value: object) -> str:
    """Render *value* as a SQL literal.

    TIP values render as quoted literal strings in the paper's syntax
    (parsed back by the engine's implicit string casts); scalars render
    as standard SQL literals.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return quote_string(value)
    if isinstance(value, _TIP_TYPES):
        return quote_string(str(value))
    raise TipTypeError(f"cannot render a SQL literal for {type(value).__name__}")
