"""SQL literal rendering for TIP values.

Parameter binding (``?`` placeholders) is always preferable, but the
paper's examples write temporal constants inline as quoted strings —
``'{[1999-10-01, NOW]}'`` — relying on the engine's implicit string
casts.  :func:`literal` renders any supported Python value in exactly
that style, with proper SQL quoting, for code generation (the layered
translator uses it) and for interactive use.

**The bare quoted form does not survive every SQL position.**  A quoted
string only becomes a TIP value where an implicit cast fires (a routine
argument, an INSERT into a declared column).  In a general expression it
stays TEXT: ``valid = '{[1999-10-01, NOW]}'`` compares an ELEMENT blob
against a string and silently matches nothing, and ``SELECT
'{[...]}'`` returns a ``str``.  Open-ended ``[x, NOW]`` periods and
multi-interval elements — exactly what a code generator emits most —
lose their type this way.  :func:`tip_literal` is the *typed* rendering
the linq query compiler emits instead: a constructor call such as
``element('{[1999-10-01, NOW]}')`` that keeps its type in any position,
and :func:`parse_literal` is its inverse, so
``tip_literal(parse_literal(x)) == x`` for every literal the compiler
can produce (see ``tests/test_literal_roundtrip.py``).
"""

from __future__ import annotations

import re

from repro.core.chronon import Chronon
from repro.core.element import Element
from repro.core.instant import Instant
from repro.core.parser import (
    parse_chronon,
    parse_element,
    parse_instant,
    parse_period,
    parse_span,
)
from repro.core.period import Period
from repro.core.span import Span
from repro.errors import TipParseError, TipTypeError

__all__ = ["literal", "tip_literal", "parse_literal", "quote_string"]

_TIP_TYPES = (Chronon, Span, Instant, Period, Element)

#: Constructor routine per TIP type — the typed literal spelling.
_CONSTRUCTORS = {
    Chronon: "chronon",
    Span: "span",
    Instant: "instant",
    Period: "period",
    Element: "element",
}

_PARSERS = {
    "chronon": parse_chronon,
    "span": parse_span,
    "instant": parse_instant,
    "period": parse_period,
    "element": parse_element,
}

_TYPED_LITERAL_RE = re.compile(
    r"^(?P<ctor>chronon|span|instant|period|element)\('(?P<body>(?:[^']|'')*)'\)$"
)
_QUOTED_RE = re.compile(r"^'(?P<body>(?:[^']|'')*)'$")
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?(?:\d+\.\d*|\d*\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)$")


def quote_string(text: str) -> str:
    """Single-quote *text* for SQL, doubling embedded quotes."""
    return "'" + text.replace("'", "''") + "'"


def literal(value: object) -> str:
    """Render *value* as a SQL literal.

    TIP values render as quoted literal strings in the paper's syntax
    (parsed back by the engine's implicit string casts); scalars render
    as standard SQL literals.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return quote_string(value)
    if isinstance(value, _TIP_TYPES):
        return quote_string(str(value))
    raise TipTypeError(f"cannot render a SQL literal for {type(value).__name__}")


def tip_literal(value: object) -> str:
    """Render *value* as a *typed* SQL literal.

    TIP values render as constructor calls — ``period('[1999-10-01,
    NOW]')`` — so the expression keeps its type in every SQL position,
    not only where an implicit cast fires.  Scalars render exactly as
    :func:`literal` does.  This is the form the linq query compiler
    emits; :func:`parse_literal` inverts it.
    """
    if isinstance(value, _TIP_TYPES):
        return f"{_CONSTRUCTORS[type(value)]}({quote_string(str(value))})"
    return literal(value)


def parse_literal(text: str) -> object:
    """Parse one :func:`tip_literal` rendering back into a Python value.

    Accepts exactly the forms :func:`tip_literal` emits: ``NULL``,
    integer and float literals, quoted strings, and the five typed
    constructor calls.  (Booleans render as ``1``/``0`` and come back as
    integers — SQL has no boolean literal.)  Raises
    :class:`~repro.errors.TipParseError` on anything else.
    """
    if not isinstance(text, str):
        raise TipParseError(f"expected a string, got {type(text).__name__}")
    stripped = text.strip()
    if stripped.upper() == "NULL":
        return None
    match = _TYPED_LITERAL_RE.match(stripped)
    if match:
        body = match["body"].replace("''", "'")
        return _PARSERS[match["ctor"]](body)
    match = _QUOTED_RE.match(stripped)
    if match:
        return match["body"].replace("''", "'")
    if _INT_RE.match(stripped):
        return int(stripped)
    if _FLOAT_RE.match(stripped):
        return float(stripped)
    raise TipParseError(f"not a SQL literal rendering: {text!r}")
