"""Sequenced temporal DML: UPDATE and DELETE *for a period of time*.

Classic temporal-database modifications (Snodgrass, *Developing
Time-Oriented Database Applications in SQL*) applied to TIP tables:

* a **temporal delete** removes a stretch of time from the validity of
  matching rows — the fact stops holding *during that period* but
  survives outside it;
* a **temporal update** changes attribute values *during a period*: the
  affected rows are split into an updated copy valid only inside the
  period and the original rows valid only outside it.

Both are executed as plain SQL over the TIP routines — no engine
changes, which is exactly the paper's point about building temporal
support as in-engine routines.  :func:`coalesce_table` is the
complementary vacuum: merge value-equivalent rows by unioning their
validities.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

from repro.client.connection import TipConnection
from repro.client.literals import literal
from repro.core.element import Element
from repro.core.period import Period
from repro.errors import TipValueError

__all__ = ["temporal_delete", "temporal_update", "coalesce_table"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name):
        raise TipValueError(f"invalid {what} name {name!r}")
    return name


def _period_literal(period: "Period | str") -> str:
    if isinstance(period, str):
        period = Period.parse(period)
    if not isinstance(period, Period):
        raise TipValueError(f"expected a Period, got {type(period).__name__}")
    return literal(Element.of(period))


def temporal_delete(
    connection: TipConnection,
    table: str,
    period: "Period | str",
    where: str = "1 = 1",
    params: Sequence = (),
    *,
    valid_column: str = "valid",
) -> int:
    """Remove *period* from the validity of rows matching *where*.

    Rows whose validity becomes empty are deleted outright.  Returns
    the number of rows whose timestamp changed (including removed
    rows).
    """
    _check_name(table, "table")
    _check_name(valid_column, "column")
    element_literal = _period_literal(period)
    affected = connection.query_one(
        f"SELECT COUNT(*) FROM {table} "
        f"WHERE ({where}) AND overlaps({valid_column}, element({element_literal}))",
        params,
    )[0]
    connection.execute(
        f"UPDATE {table} SET {valid_column} = "
        f"tdifference({valid_column}, element({element_literal})) "
        f"WHERE ({where}) AND overlaps({valid_column}, element({element_literal}))",
        params,
    )
    connection.execute(
        f"DELETE FROM {table} WHERE ({where}) AND is_empty({valid_column})",
        params,
    )
    return affected


def temporal_update(
    connection: TipConnection,
    table: str,
    assignments: Dict[str, object],
    period: "Period | str",
    where: str = "1 = 1",
    params: Sequence = (),
    *,
    valid_column: str = "valid",
) -> int:
    """Apply *assignments* to matching rows, but only during *period*.

    Each affected row splits: a copy with the new attribute values
    valid for ``old_validity intersect period``, and the original
    shrunk to ``old_validity - period`` (dropped when empty).  Returns
    the number of rows that were split.
    """
    _check_name(table, "table")
    _check_name(valid_column, "column")
    if not assignments:
        raise TipValueError("temporal_update needs at least one assignment")
    for column in assignments:
        _check_name(column, "column")
        if column == valid_column:
            raise TipValueError("cannot assign the validity column directly")

    element_literal = _period_literal(period)
    columns = [
        row[1] for row in connection.execute(f"PRAGMA table_info({table})").fetchall()
    ]
    if valid_column not in columns:
        raise TipValueError(f"{table} has no column {valid_column!r}")

    select_exprs: List[str] = []
    for column in columns:
        if column == valid_column:
            select_exprs.append(
                f"tintersect({valid_column}, element({element_literal}))"
            )
        elif column in assignments:
            select_exprs.append(literal(assignments[column]))
        else:
            select_exprs.append(column)

    match = (
        f"({where}) AND overlaps({valid_column}, element({element_literal}))"
    )
    affected = connection.query_one(
        f"SELECT COUNT(*) FROM {table} WHERE {match}", params
    )[0]
    if affected == 0:
        return 0

    # 1. Insert the updated copies (valid only inside the period).
    connection.execute(
        f"INSERT INTO {table} ({', '.join(columns)}) "
        f"SELECT {', '.join(select_exprs)} FROM {table} WHERE {match}",
        params,
    )
    # 2. Shrink the originals to the time outside the period.  The
    #    freshly inserted copies have validity inside the period, so
    #    they are excluded by construction... unless an original was
    #    entirely inside the period, making its copy identical in the
    #    match; subtracting the period from a copy that lies inside it
    #    would wrongly empty it.  Guard by rowid: only rows that
    #    existed before step 1 are shrunk.
    max_new = connection.query_one(f"SELECT MAX(rowid) FROM {table}")[0]
    first_copy = max_new - affected + 1
    connection.execute(
        f"UPDATE {table} SET {valid_column} = "
        f"tdifference({valid_column}, element({element_literal})) "
        f"WHERE {match} AND rowid < ?",
        (*params, first_copy),
    )
    connection.execute(
        f"DELETE FROM {table} WHERE ({where}) AND is_empty({valid_column})",
        params,
    )
    return affected


def coalesce_table(
    connection: TipConnection,
    table: str,
    key_columns: Sequence[str],
    *,
    valid_column: str = "valid",
) -> int:
    """Merge value-equivalent rows, unioning their validities.

    The vacuum counterpart of temporal DML: splits and inserts can
    leave several rows with identical attributes; afterwards the table
    holds one row per distinct attribute tuple.  Returns the number of
    rows removed.
    """
    _check_name(table, "table")
    _check_name(valid_column, "column")
    for column in key_columns:
        _check_name(column, "column")
    if not key_columns:
        raise TipValueError("coalesce_table needs the attribute columns")
    table_columns = [
        row[1] for row in connection.execute(f"PRAGMA table_info({table})").fetchall()
    ]
    expected = set(key_columns) | {valid_column}
    if set(table_columns) != expected:
        raise TipValueError(
            f"coalesce_table needs every non-validity column listed: "
            f"table has {table_columns}, given {sorted(expected)}"
        )
    keys = ", ".join(key_columns)
    before = connection.query_one(f"SELECT COUNT(*) FROM {table}")[0]
    connection.execute("DROP TABLE IF EXISTS coalesce_scratch")
    connection.execute(
        f"CREATE TEMPORARY TABLE coalesce_scratch AS "
        f"SELECT {keys}, group_union({valid_column}) AS {valid_column} "
        f"FROM {table} GROUP BY {keys}"
    )
    connection.execute(f"DELETE FROM {table}")
    connection.execute(
        f"INSERT INTO {table} ({keys}, {valid_column}) "
        f"SELECT {keys}, {valid_column} FROM coalesce_scratch"
    )
    connection.execute("DROP TABLE coalesce_scratch")
    after = connection.query_one(f"SELECT COUNT(*) FROM {table}")[0]
    return before - after
