"""Customized type mapping for result sets.

The paper's TIP Browser "uses customized type mapping (a new feature in
JDBC 2.0) to retrieve values of TIP datatypes from the database and
convert them into Java objects".  :class:`TypeMap` is that mechanism:
a per-connection, user-extensible mapping applied to every value coming
out of a result set.

SQLite's declared-type converters only fire for plain column references;
values produced by *expressions* (``intersect(p1.valid, p2.valid)``)
reach the client as raw blobs.  The default map recognizes TIP blobs by
their tagged header and decodes them, so expression results surface as
proper :class:`~repro.core.element.Element` (etc.) objects too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import codec

__all__ = ["TypeMap"]

Mapper = Callable[[object], object]


class TypeMap:
    """Maps raw result values to application objects.

    The default behaviour decodes TIP blobs; additional mappers can be
    registered either by *declared column type name* (as written in
    ``CREATE TABLE``) or as a blob fallback.
    """

    def __init__(self, *, decode_tip_blobs: bool = True) -> None:
        self._decode_tip_blobs = decode_tip_blobs
        self._by_decltype: Dict[str, Mapper] = {}

    def register(self, decltype: str, mapper: Mapper) -> None:
        """Map values of columns declared with type *decltype*."""
        self._by_decltype[decltype.upper()] = mapper

    def map_value(self, value: object, decltype: Optional[str] = None) -> object:
        """Convert one raw value."""
        if decltype:
            mapper = self._by_decltype.get(decltype.upper())
            if mapper is not None:
                return mapper(value)
        if self._decode_tip_blobs and codec.is_tip_blob(value):
            return codec.decode(bytes(value))  # type: ignore[arg-type]
        return value

    def map_row(
        self,
        row: Optional[Sequence],
        decltypes: Optional[Sequence[Optional[str]]] = None,
    ) -> Optional[Tuple]:
        """Convert one result row (None passes through, for fetchone)."""
        if row is None:
            return None
        if decltypes is None:
            return tuple(self.map_value(value) for value in row)
        return tuple(
            self.map_value(value, decltype)
            for value, decltype in zip(row, decltypes)
        )

    def map_rows(
        self,
        rows: Sequence[Sequence],
        decltypes: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Tuple]:
        """Convert a list of result rows."""
        if decltypes is None:
            # Without decltypes, map_value only ever transforms
            # bytes-like values (TIP blob detection); rows of plain
            # scalars — the overwhelming case — pass through with one
            # isinstance scan instead of a map_value call per value.
            mapped: List[Tuple] = []
            append = mapped.append
            for row in rows:
                for value in row:
                    if isinstance(value, (bytes, bytearray, memoryview)):
                        append(tuple(self.map_value(v) for v in row))
                        break
                else:
                    append(row if isinstance(row, tuple) else tuple(row))
            return mapped
        return [self.map_row(row, decltypes) for row in rows]  # type: ignore[misc]
