"""TIP-enabled database connections.

:func:`connect` opens a SQLite database, installs the TIP DataBlade
into it, and wraps it in :class:`TipConnection`, which adds the two
behaviours a temporal client needs beyond DB-API:

* **Per-statement ``NOW`` binding.**  The interpretation of ``NOW`` is
  sampled once when a statement starts and held fixed for all engine
  routine invocations of that statement, *including those that happen
  during later fetches* — SQLite evaluates rows lazily, so the cursor
  re-enters the statement's ``NOW`` context around every fetch.
* **``NOW`` override** (:meth:`TipConnection.set_now`), the what-if
  mechanism the TIP Browser exposes: queries evaluate in a temporal
  context different from the present.

Result values pass through a :class:`~repro.client.typemap.TypeMap`,
so TIP values come back as their datatype classes whether they arrive
from declared columns or from expressions.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.blade.sqlite_backend import install_tip
from repro.client.typemap import TypeMap
from repro.core.chronon import Chronon
from repro.core.formatter import chronon_text
from repro.core.granularity import check_chronon_seconds, wall_clock_seconds
from repro.core.nowctx import bind_now_seconds, reset_now, use_now
from repro.core.parser import parse_chronon
from repro.faults import state as _FAULTS
from repro.obs.profile import StatementRecorder
from repro.obs.profile import state as _PROFILE

__all__ = ["connect", "TipConnection", "TipCursor"]


def connect(
    database: str = ":memory:",
    *,
    now: "Chronon | str | None" = None,
    type_map: Optional[TypeMap] = None,
    check_same_thread: bool = True,
) -> "TipConnection":
    """Open a TIP-enabled database.

    *now*, when given, overrides the interpretation of ``NOW`` for every
    statement on this connection (what-if analysis); otherwise each
    statement binds ``NOW`` to the wall clock at execution time.
    *check_same_thread=False* permits cross-thread use — the caller must
    then serialize access itself (the network server does, via a lock).
    """
    raw = sqlite3.connect(
        database,
        detect_types=sqlite3.PARSE_DECLTYPES,
        check_same_thread=check_same_thread,
    )
    install_tip(raw)
    return TipConnection(raw, now=now, type_map=type_map)


class TipConnection:
    """A DB-API-flavoured wrapper around a TIP-enabled connection."""

    def __init__(
        self,
        raw: sqlite3.Connection,
        *,
        now: "Chronon | str | None" = None,
        type_map: Optional[TypeMap] = None,
    ) -> None:
        self._raw = raw
        self._now_override: Optional[int] = None
        self.type_map = type_map if type_map is not None else TypeMap()
        self._last_profile = None
        if now is not None:
            self.set_now(now)

    @property
    def last_profile(self):
        """The :class:`~repro.obs.profile.QueryProfile` of the most
        recent profiled statement on this connection (None while the
        profiler is off)."""
        return self._last_profile

    # -- NOW control ---------------------------------------------------

    def set_now(self, now: "Chronon | str | int | None") -> None:
        """Override ``NOW`` for subsequent statements (None clears it).

        An ``int`` is taken as chronon seconds directly — the pool's
        per-checkout fast path, which re-binds a session NOW on every
        read without constructing a throwaway :class:`Chronon`.
        """
        if now is None:
            self._now_override = None
        elif isinstance(now, int):
            self._now_override = check_chronon_seconds(now)
        elif isinstance(now, str):
            self._now_override = parse_chronon(now).seconds
        elif isinstance(now, Chronon):
            self._now_override = now.seconds
        else:
            raise TypeError(f"set_now expects Chronon, str, int, or None, got {type(now).__name__}")

    @property
    def now_override(self) -> Optional[Chronon]:
        """The active override, or None when tracking the wall clock."""
        return None if self._now_override is None else Chronon(self._now_override)

    def statement_now_seconds(self) -> int:
        """The ``NOW`` a statement starting right now would bind."""
        if self._now_override is not None:
            return self._now_override
        return wall_clock_seconds()

    # -- statement execution --------------------------------------------

    def cursor(self) -> "TipCursor":
        return TipCursor(self._raw.cursor(), self)

    def execute(self, sql: str, parameters: Sequence = ()) -> "TipCursor":
        """Execute one statement, binding ``NOW`` for its whole lifetime."""
        return self.cursor().execute(sql, parameters)

    def executemany(self, sql: str, seq_of_parameters: Iterable[Sequence]) -> "TipCursor":
        return self.cursor().executemany(sql, seq_of_parameters)

    def executescript(self, script: str) -> "TipCursor":
        cursor = self.cursor()
        cursor.executescript(script)
        return cursor

    def query(self, sql: str, parameters: Sequence = ()) -> List[Tuple]:
        """Execute and fetch all rows, type-mapped."""
        return self.execute(sql, parameters).fetchall()

    def query_one(self, sql: str, parameters: Sequence = ()) -> Optional[Tuple]:
        """Execute and fetch the first row, type-mapped."""
        return self.execute(sql, parameters).fetchone()

    # -- transactions and lifecycle ---------------------------------------

    def commit(self) -> None:
        self._raw.commit()

    def rollback(self) -> None:
        self._raw.rollback()

    def close(self) -> None:
        self._raw.close()

    @property
    def raw(self) -> sqlite3.Connection:
        """The underlying sqlite3 connection (blade already installed)."""
        return self._raw

    def linq(self) -> "object":
        """A typed query-builder front bound to this connection.

        Discovers the schema now; call :meth:`repro.linq.Linq.refresh`
        after DDL.  See :mod:`repro.linq`.
        """
        from repro.linq import Linq  # lazy: linq imports this module

        return Linq(self)

    def __enter__(self) -> "TipConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()


class TipCursor:
    """Cursor holding its statement's ``NOW`` across lazy evaluation.

    When the query profiler (:mod:`repro.obs.profile`) is on, each
    ``execute`` leaves its :class:`~repro.obs.profile.QueryProfile` in
    :attr:`profile` (and on the connection's ``last_profile``); lazy
    fetches keep adding their time and row counts to it.  With the
    profiler off, the only footprint is the attribute check guarding
    the branch — no extra Python-level calls (settrace-verified in
    ``tests/test_profile.py``).
    """

    def __init__(self, raw: sqlite3.Cursor, connection: TipConnection) -> None:
        self._raw = raw
        self._connection = connection
        self._stmt_now: int = connection.statement_now_seconds()
        self.profile = None

    # -- execution -------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence = ()) -> "TipCursor":
        if _FAULTS.plan is not None:
            # Chaos hook: a statement that fails before reaching the
            # engine must leave the connection consistent (nothing ran,
            # nothing to roll back).
            _FAULTS.plan.apply("conn.execute")
        if _PROFILE.enabled or _PROFILE.forced:
            return self._execute_profiled(sql, parameters)
        self._stmt_now = self._connection.statement_now_seconds()
        # Direct token bind/reset: this brackets every statement and
        # every fetch, so it skips use_now's generator + dispatch cost.
        token = bind_now_seconds(self._stmt_now)
        try:
            self._raw.execute(sql, parameters)
        finally:
            reset_now(token)
        return self

    def execute_fetchall(self, sql: str, parameters: Sequence = ()):
        """Execute and fetch under ONE ``NOW`` binding; rows or None.

        The server's per-statement fast path: one bind/reset pair
        covers execute and fetch (semantically identical — both bind
        the same ``self._stmt_now``), and non-row statements report
        ``None`` (callers commit and read :attr:`rowcount`).  Falls
        back to the ordinary profiled path when recording.
        """
        if _FAULTS.plan is not None:
            _FAULTS.plan.apply("conn.execute")
        if _PROFILE.enabled or _PROFILE.forced:
            self._execute_profiled(sql, parameters)
            if self._raw.description is None:
                return None
            return self._fetch_profiled(lambda: self._raw.fetchall())
        self._stmt_now = self._connection.statement_now_seconds()
        token = bind_now_seconds(self._stmt_now)
        try:
            raw = self._raw
            raw.execute(sql, parameters)
            if raw.description is None:
                return None
            return self._connection.type_map.map_rows(raw.fetchall(), None)
        finally:
            reset_now(token)

    def _execute_profiled(self, sql: str, parameters: Sequence) -> "TipCursor":
        self._stmt_now = self._connection.statement_now_seconds()
        recorder = StatementRecorder(sql).start()
        try:
            with use_now(self._stmt_now):
                self._raw.execute(sql, parameters)
        except Exception as exc:
            recorder.finish(
                ok=False, error=str(exc),
                statement_now=str(Chronon(self._stmt_now)),
            )
            raise
        self.profile = recorder.finish(
            rowcount=self._raw.rowcount,
            statement_now=str(Chronon(self._stmt_now)),
        )
        self._connection._last_profile = self.profile
        return self

    def executemany(self, sql: str, seq_of_parameters: Iterable[Sequence]) -> "TipCursor":
        self._stmt_now = self._connection.statement_now_seconds()
        token = bind_now_seconds(self._stmt_now)
        try:
            self._raw.executemany(sql, seq_of_parameters)
        finally:
            reset_now(token)
        return self

    def executescript(self, script: str) -> "TipCursor":
        self._stmt_now = self._connection.statement_now_seconds()
        token = bind_now_seconds(self._stmt_now)
        try:
            self._raw.executescript(script)
        finally:
            reset_now(token)
        return self

    # -- fetching ----------------------------------------------------------

    def _decltypes(self) -> Optional[List[Optional[str]]]:
        description = self._raw.description
        if description is None:
            return None
        # sqlite3 exposes no decltype in description; converters already
        # handled declared columns.  The type map's blob detection covers
        # expression results, so no per-column decltype is needed here.
        return None

    def fetchone(self) -> Optional[Tuple]:
        if self.profile is not None:
            return self._fetch_profiled(lambda: self._raw.fetchone(), one=True)
        token = bind_now_seconds(self._stmt_now)
        try:
            row = self._raw.fetchone()
            return self._connection.type_map.map_row(row, self._decltypes())
        finally:
            reset_now(token)

    def fetchmany(self, size: int = 64) -> List[Tuple]:
        if self.profile is not None:
            return self._fetch_profiled(lambda: self._raw.fetchmany(size))
        token = bind_now_seconds(self._stmt_now)
        try:
            rows = self._raw.fetchmany(size)
            return self._connection.type_map.map_rows(rows, self._decltypes())
        finally:
            reset_now(token)

    def fetchall(self) -> List[Tuple]:
        if self.profile is not None:
            return self._fetch_profiled(lambda: self._raw.fetchall())
        token = bind_now_seconds(self._stmt_now)
        try:
            rows = self._raw.fetchall()
            return self._connection.type_map.map_rows(rows, self._decltypes())
        finally:
            reset_now(token)

    def _fetch_profiled(self, fetch, one: bool = False):
        """A fetch that charges its time and rows to the open profile."""
        from time import perf_counter

        started = perf_counter()
        with use_now(self._stmt_now):
            fetched = fetch()
            if one:
                mapped = self._connection.type_map.map_row(fetched, self._decltypes())
            else:
                mapped = self._connection.type_map.map_rows(fetched, self._decltypes())
        self.profile.fetch_seconds += perf_counter() - started
        if one:
            self.profile.rows += 1 if mapped is not None else 0
        else:
            self.profile.rows += len(mapped)
        return mapped

    def __iter__(self) -> Iterator[Tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- metadata ------------------------------------------------------------

    @property
    def description(self):
        return self._raw.description

    @property
    def rowcount(self) -> int:
        return self._raw.rowcount

    @property
    def lastrowid(self) -> Optional[int]:
        return self._raw.lastrowid

    @property
    def statement_now(self) -> Chronon:
        """The ``NOW`` this cursor's current statement is bound to."""
        return Chronon(self._stmt_now)

    @property
    def statement_now_text(self) -> str:
        """``str(self.statement_now)`` without constructing the Chronon
        — the server stamps every response frame with it."""
        return chronon_text(self._stmt_now)

    def close(self) -> None:
        self._raw.close()
