"""TIP client library.

The Python analog of the paper's TIP C and Java libraries: it opens a
TIP-enabled database, maps engine values to the five datatype classes
(JDBC-2.0-style customized type mapping), binds one consistent ``NOW``
per statement, and supports overriding ``NOW`` for what-if analysis.
"""

from repro.client.connection import TipConnection, TipCursor, connect
from repro.client.literals import literal
from repro.client.temporal_dml import coalesce_table, temporal_delete, temporal_update
from repro.client.typemap import TypeMap

__all__ = [
    "connect",
    "TipConnection",
    "TipCursor",
    "TypeMap",
    "literal",
    "temporal_delete",
    "temporal_update",
    "coalesce_table",
]
