"""The TSQL2 statement-modifier preprocessor.

Supported statement forms (a documented, restricted subset — enough to
express TSQL2's three evaluation modes over select-from-where blocks):

* ``SNAPSHOT [AT '<instant>'] SELECT ... FROM ... [WHERE ...]`` —
  *snapshot* semantics: the query sees the database as of one time
  point (default ``NOW``); timestamps disappear from the result.
* ``VALIDTIME [PERIOD '[a, b]'] SELECT ... FROM ... [WHERE ...]`` —
  *sequenced* semantics: the result holds wherever **all** operand
  tuples hold simultaneously, and carries that time as a trailing
  ``valid`` column (optionally clipped to the stated period).
* ``NONSEQUENCED VALIDTIME SELECT ...`` — timestamps are ordinary
  attributes; the statement passes through unchanged.

Restrictions (violations raise :class:`TranslationError`, carrying the
offending clause text and its character offset): the FROM list must be
plain ``table [AS] alias`` items — optionally grouped in parentheses,
as the linq query compiler emits (``FROM (Prescription AS p, Patient
AS q)``) — with no subqueries or JOIN syntax, and sequenced
(``VALIDTIME``) statements cannot use GROUP BY — sequenced aggregation
needs instant-by-instant group semantics that plain SQL cannot express
(use TIP's ``group_union`` family directly).

Temporal tables are detected from the schema: any column declared with
type ``ELEMENT`` is a validity column (the first one per table is
used); non-temporal tables in the FROM list simply contribute no
validity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.client.connection import TipConnection
from repro.errors import TranslationError
from repro.tsql import compiled

__all__ = ["TsqlSession", "translate_tsql", "split_select", "strip_explain"]

_EXPLAIN_RE = re.compile(
    r"^\s*EXPLAIN\s+TEMPORAL\s+(?P<rest>\S.*)$",
    re.IGNORECASE | re.DOTALL,
)


def strip_explain(statement: str) -> Optional[str]:
    """The statement under an ``EXPLAIN TEMPORAL`` prefix, or None.

    ``EXPLAIN TEMPORAL <sql>`` is TIP's per-query cost surface: the
    wrapped statement (TSQL2 modifiers included) is run under both the
    integrated blade engine and a layered TimeDB-style mirror, and the
    two profiles are reported side by side
    (:mod:`repro.tsql.explain`).  This helper only recognizes and
    strips the prefix, so the shell and CLI can route the statement.
    """
    match = _EXPLAIN_RE.match(statement)
    return match["rest"].strip() if match else None

_MODIFIER_RE = re.compile(
    r"""^\s*
        (?:
            (?P<nonseq>NONSEQUENCED\s+VALIDTIME)
          | (?P<validtime>VALIDTIME)(?:\s+PERIOD\s+'(?P<period>[^']*)')?
          | (?P<snapshot>SNAPSHOT)(?:\s+AT\s+'(?P<at>[^']*)')?
        )
        \s+(?P<rest>SELECT\b.*)$""",
    re.IGNORECASE | re.DOTALL | re.VERBOSE,
)

_CLAUSE_KEYWORDS = ("FROM", "WHERE", "GROUP BY", "ORDER BY", "HAVING", "LIMIT")


def _find_top_level(sql: str, keyword: str) -> int:
    """Index of *keyword* at paren/quote depth zero, or -1."""
    upper = sql.upper()
    target = keyword.upper()
    depth = 0
    in_string = False
    index = 0
    while index < len(sql):
        char = sql[index]
        if in_string:
            if char == "'":
                in_string = False
        elif char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and upper.startswith(target, index):
            before_ok = index == 0 or not (sql[index - 1].isalnum() or sql[index - 1] == "_")
            after = index + len(target)
            after_ok = after >= len(sql) or not (sql[after].isalnum() or sql[after] == "_")
            if before_ok and after_ok:
                return index
        index += 1
    return -1


@dataclass
class SelectParts:
    """A SELECT statement split into its top-level clauses."""

    select_list: str
    from_list: str
    where: Optional[str]
    tail: str  # GROUP BY / ORDER BY / ... onwards, verbatim


def split_select(sql: str) -> SelectParts:
    """Split a single SELECT into clauses at top level."""
    stripped = sql.strip().rstrip(";")
    if not stripped.upper().startswith("SELECT"):
        raise TranslationError("statement must start with SELECT")
    from_at = _find_top_level(stripped, "FROM")
    if from_at < 0:
        raise TranslationError("statement has no FROM clause")
    select_list = stripped[len("SELECT"):from_at].strip()
    remainder = stripped[from_at + len("FROM"):]

    boundaries: List[Tuple[int, str]] = []
    for keyword in ("WHERE", "GROUP BY", "ORDER BY", "HAVING", "LIMIT"):
        at = _find_top_level(remainder, keyword)
        if at >= 0:
            boundaries.append((at, keyword))
    boundaries.sort()

    from_end = boundaries[0][0] if boundaries else len(remainder)
    from_list = remainder[:from_end].strip()

    where = None
    tail_start = from_end
    if boundaries and boundaries[0][1] == "WHERE":
        where_start = boundaries[0][0] + len("WHERE")
        where_end = boundaries[1][0] if len(boundaries) > 1 else len(remainder)
        where = remainder[where_start:where_end].strip()
        tail_start = where_end
    tail = remainder[tail_start:].strip()
    return SelectParts(select_list, from_list, where, tail)


def _split_commas_with_offsets(text: str) -> List[Tuple[str, int]]:
    """Top-level comma parts of *text* with the offset of each part.

    Offsets point at the first non-space character of the (stripped)
    part within *text*, so error reports can locate the clause.
    """
    parts: List[Tuple[str, int]] = []
    depth = 0
    in_string = False
    start = 0
    index = 0
    for index, char in enumerate(text):
        if in_string:
            if char == "'":
                in_string = False
            continue
        if char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append((text[start:index], start))
            start = index + 1
    parts.append((text[start:], start))
    stripped: List[Tuple[str, int]] = []
    for part, at in parts:
        lead = len(part) - len(part.lstrip())
        part = part.strip()
        if part:
            stripped.append((part, at + lead))
    return stripped


def _split_top_level_commas(text: str) -> List[str]:
    return [part for part, _ in _split_commas_with_offsets(text)]


_FROM_ITEM_RE = re.compile(
    r"^(?P<table>[A-Za-z_][A-Za-z0-9_]*)(?:\s+(?:AS\s+)?(?P<alias>[A-Za-z_][A-Za-z0-9_]*))?$",
    re.IGNORECASE,
)


def _parse_from_items(from_list: str, *, base: int = 0) -> List[Tuple[str, str]]:
    """``(table, alias)`` pairs; alias defaults to the table name.

    Items may be grouped in parentheses — ``(a AS x, b AS y)``, nested
    arbitrarily — which is how the linq compiler spells a join's FROM
    list.  *base* offsets error positions into the caller's statement.
    """
    items = []
    for part, at in _split_commas_with_offsets(from_list):
        if part.startswith("(") and part.endswith(")"):
            items.extend(_parse_from_items(part[1:-1], base=base + at + 1))
            continue
        match = _FROM_ITEM_RE.match(part)
        if not match:
            raise TranslationError(
                f"unsupported FROM item {part!r} at offset {base + at} "
                "(plain 'table [AS] alias' items, optionally parenthesized)",
                clause=part,
                offset=base + at,
            )
        table = match["table"]
        alias = match["alias"] or table
        items.append((table, alias))
    return items


def translate_tsql(
    statement: str,
    valid_columns: Dict[str, str],
) -> str:
    """Rewrite one TSQL2-modified statement into TIP SQL.

    *valid_columns* maps (lower-cased) temporal table names to their
    validity column.  A statement without a modifier passes through
    unchanged.
    """
    match = _MODIFIER_RE.match(statement)
    if not match:
        return statement.strip()
    if match["nonseq"]:
        return match["rest"].strip()

    parts = split_select(match["rest"])
    from_base = statement.find(parts.from_list) if parts.from_list else 0
    from_items = _parse_from_items(parts.from_list, base=max(from_base, 0))
    validities = [
        f"{alias}.{valid_columns[table.lower()]}"
        for table, alias in from_items
        if table.lower() in valid_columns
    ]

    if match["snapshot"]:
        at = match["at"] or "NOW"
        conjuncts = [f"contains_instant({v}, instant('{at}'))" for v in validities]
        return _reassemble(parts, parts.select_list, conjuncts)

    # VALIDTIME (sequenced).
    if "GROUP BY" in parts.tail.upper() or "HAVING" in parts.tail.upper():
        raise TranslationError(
            "sequenced (VALIDTIME) aggregation is not expressible in this subset; "
            "use TIP's group_union/group_intersect aggregates directly",
            clause=parts.tail,
            offset=max(statement.find(parts.tail), 0) if parts.tail else None,
        )
    if not validities:
        raise TranslationError(
            "VALIDTIME requires at least one temporal table in FROM",
            clause=parts.from_list,
            offset=max(from_base, 0),
        )

    validity_expr = validities[0]
    for v in validities[1:]:
        validity_expr = f"tintersect({validity_expr}, {v})"
    conjuncts = [
        f"overlaps({a}, {b})"
        for i, a in enumerate(validities)
        for b in validities[i + 1:]
    ]
    if match["period"]:
        validity_expr = f"restrict({validity_expr}, period('[{match['period']}]'))"
        conjuncts.extend(
            f"overlaps({v}, to_element(period('[{match['period']}]')))" for v in validities
        )
    select_list = f"{parts.select_list}, {validity_expr} AS valid"
    return _reassemble(parts, select_list, conjuncts)


def _reassemble(parts: SelectParts, select_list: str, conjuncts: Sequence[str]) -> str:
    where = parts.where
    if conjuncts:
        extra = " AND ".join(conjuncts)
        where = f"({where}) AND {extra}" if where else extra
    sql = f"SELECT {select_list} FROM {parts.from_list}"
    if where:
        sql += f" WHERE {where}"
    if parts.tail:
        sql += f" {parts.tail}"
    return sql


_ELEMENT_COLUMN_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\s+ELEMENT\b", re.IGNORECASE
)

_PLANNER = None


def _planner():
    """The temporal planner, imported lazily (it imports this module)."""
    global _PLANNER
    if _PLANNER is None:
        from repro.plan import planner

        _PLANNER = planner
    return _PLANNER


class TsqlSession:
    """Execute TSQL2-modified statements on a TIP connection.

    Validity columns are auto-discovered from the schema (first column
    declared ``ELEMENT`` per table); :meth:`register` overrides or adds
    mappings explicitly.  Discovered and registered mappings are kept
    apart so :meth:`rescan` can *drop* a mapping whose table lost its
    validity column (or was dropped outright) without clobbering
    explicit registrations — previously a stale discovery stuck forever
    and a re-created table kept its old validity column.

    Translation runs through the process-wide compiled-statement cache
    (:mod:`repro.tsql.compiled`): any change to the effective registry
    bumps the cache generation, so a plan compiled before a table
    gained (or lost) its valid-time column is never served after.
    """

    def __init__(self, connection: TipConnection) -> None:
        self._connection = connection
        self._discovered: Dict[str, str] = {}
        self._overrides: Dict[str, str] = {}
        self._merged: Dict[str, str] = {}
        self.rescan()

    def rescan(self) -> None:
        """Re-discover temporal tables from sqlite_master.

        Replaces (not merges) the discovered mapping; the compiled
        cache generation is bumped only when discovery actually
        changed, so sessions opening against an unchanged schema keep
        every cached plan warm.
        """
        discovered = compiled.discover_valid_columns(self._connection)
        if discovered != self._discovered:
            self._discovered = discovered
            self._merged = {**self._discovered, **self._overrides}
            compiled.bump_generation()

    def register(self, table: str, valid_column: str) -> None:
        """Explicitly declare *table*'s validity column."""
        key = table.lower()
        if self._overrides.get(key) != valid_column:
            self._overrides[key] = valid_column
            self._merged = {**self._discovered, **self._overrides}
            compiled.bump_generation()

    @property
    def temporal_tables(self) -> Dict[str, str]:
        return dict(self._merged)

    def compile(self, statement: str) -> "compiled.CompiledStatement":
        """The statement's compiled form, served from the LRU."""
        return compiled.compile_statement(statement, self._merged)

    def translate(self, statement: str) -> str:
        """Rewrite without executing (for inspection and tests)."""
        return self.compile(statement).sql

    def query(self, statement: str, parameters: Sequence = ()) -> List[Tuple]:
        """Translate and execute, returning type-mapped rows.

        A committed DDL statement triggers a :meth:`rescan`, so a table
        gaining or losing its valid-time column is picked up (and the
        compiled cache invalidated) without the caller remembering to.

        Translated statements the temporal planner fully understands
        run on its set-based kernels (:mod:`repro.plan`) instead of the
        UDF path; the planner returns None for anything else — same
        rows either way, so callers never see the difference except in
        ``EXPLAIN TEMPORAL`` and the ``plan.*`` counters.
        """
        plan = self.compile(statement)
        if plan.shape is not None and not parameters:
            # The shape was matched at compile time; statements without
            # one (the vast majority) skip the planner entirely here.
            result = _planner().maybe_execute_kernel(
                self._connection, plan.sql, shape=plan.shape
            )
            if result is not None:
                return result.rows
        rows = self._connection.query(plan.sql, parameters)
        if plan.ddl:
            self.rescan()
        return rows
