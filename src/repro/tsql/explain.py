"""``EXPLAIN TEMPORAL <sql>`` — the per-query E2 comparison.

The paper's experiment E2 compares the integrated (in-engine blade)
architecture against the layered TimeDB/Tiger approach in aggregate;
this module turns that comparison into a first-class, per-statement
tool.  Given one statement (TSQL2 modifiers included), it

1. runs it on the TIP connection under the query profiler
   (:mod:`repro.obs.profile`) — wall time, per-routine breakdown,
   periods processed, index probes;
2. mirrors the referenced temporal tables into a layered
   :class:`~repro.layered.engine.LayeredEngine`
   (:func:`~repro.layered.migrate.flatten_from_tip`), classifies the
   statement into one of the translatable temporal operations
   (timeslice / snapshot / coalesce-length / overlap join), and runs
   the translated equivalent under the same profiler;
3. renders the two profiles, the generated SQL, its static complexity
   (:func:`~repro.layered.translator.sql_complexity`), and the SQLite
   query plans side by side.

Statement shapes with no layered equivalent in the translator's
repertoire still get the blade profile plus the layered side's static
complexity; the report says so instead of guessing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.client.connection import TipConnection
from repro.core.chronon import Chronon
from repro.core.parser import parse_chronon
from repro.errors import TipError, TranslationError
from repro.layered import translator
from repro.layered.engine import LayeredEngine
from repro.layered.migrate import flatten_from_tip
from repro.obs import profile as _profile
from repro.obs.export import render_profile
from repro.obs.profile import QueryProfile, StatementRecorder
from repro.tsql import compiled as _compiled
from repro.tsql.preprocessor import (
    TsqlSession,
    _parse_from_items,
    split_select,
    strip_explain,
)

__all__ = ["ExplainReport", "EnginePlan", "explain_temporal"]

_GROUP_UNION_RE = re.compile(r"\bgroup_union\s*\(", re.IGNORECASE)
_OVERLAPS_RE = re.compile(r"\boverlaps\s*\(", re.IGNORECASE)
_CONTAINS_INSTANT_RE = re.compile(
    r"\bcontains_instant\s*\([^,]+,\s*instant\s*\(\s*'(?P<at>[^']*)'\s*\)", re.IGNORECASE
)
_RANGE_LITERAL_RE = re.compile(
    r"(?:period|element)\s*\(\s*'\{?\[(?P<lo>[^,\]]+),(?P<hi>[^\]]+)\]\}?'\s*\)",
    re.IGNORECASE,
)
_GROUP_BY_RE = re.compile(
    r"\bGROUP\s+BY\s+(?P<keys>.+?)(?:\s+(?:ORDER\s+BY|HAVING|LIMIT)\b|$)",
    re.IGNORECASE | re.DOTALL,
)


@dataclass
class EnginePlan:
    """One engine's half of the comparison."""

    engine: str                      # "blade" | "layered"
    sql: str                         # the SQL that engine ran (or would run)
    plan: List[str] = field(default_factory=list)   # EXPLAIN QUERY PLAN details
    complexity: Dict[str, int] = field(default_factory=dict)
    profile: Optional[QueryProfile] = None
    operation: str = ""              # the classified layered operation
    note: str = ""

    def as_dict(self) -> Dict:
        return {
            "engine": self.engine,
            "sql": self.sql,
            "plan": self.plan,
            "complexity": self.complexity,
            "profile": self.profile.as_dict() if self.profile else None,
            "operation": self.operation,
            "note": self.note,
        }


@dataclass
class ExplainReport:
    """The side-by-side blade-vs-layered cost report for one statement."""

    statement: str
    translated: str
    blade: EnginePlan
    layered: EnginePlan
    statement_cache: Dict = field(default_factory=dict)
    plan_strategy: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "statement": self.statement,
            "translated": self.translated,
            "blade": self.blade.as_dict(),
            "layered": self.layered.as_dict(),
            "statement_cache": dict(self.statement_cache),
            "plan_strategy": dict(self.plan_strategy),
        }

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        lines = [f"EXPLAIN TEMPORAL {self.statement}"]
        if self.translated != self.statement:
            lines.append(f"translated: {self.translated}")
        if self.statement_cache:
            entries = self.statement_cache.get("entries", 0)
            capacity = self.statement_cache.get("capacity", 0)
            if not self.statement_cache.get("enabled", True):
                lines.append("statement cache: disabled")
            else:
                outcome = "hit" if self.statement_cache.get("hit") else "miss"
                lines.append(
                    f"statement cache: {outcome} "
                    f"(entries {entries}/{capacity}, "
                    f"generation {self.statement_cache.get('generation', 0)})"
                )
        if self.plan_strategy:
            strategy = self.plan_strategy.get("strategy", "naive")
            if strategy == "kernel":
                lines.append(
                    "temporal strategy: kernel "
                    f"({self.plan_strategy.get('shape', '?')} via "
                    f"{self.plan_strategy.get('kernel', '?')})"
                )
            else:
                lines.append(
                    "temporal strategy: naive "
                    f"({self.plan_strategy.get('reason', 'no reason given')})"
                )
        if self.layered.operation:
            lines.append(f"layered equivalent: {self.layered.operation}")
        lines.append("")
        lines += _side_by_side(self.blade, self.layered)
        if self.blade.profile and self.blade.profile.routines:
            lines += ["", "blade routine breakdown:"]
            lines += ["  " + line
                      for line in render_profile(self.blade.profile.as_dict()).splitlines()]
        for side in (self.blade, self.layered):
            if side.plan:
                lines += ["", f"{side.engine} query plan:"]
                lines += [f"  {detail}" for detail in side.plan]
        if self.layered.sql:
            lines += ["", "layered SQL:", f"  {self.layered.sql}"]
        notes = [side.note for side in (self.blade, self.layered) if side.note]
        if notes:
            lines += [""] + [f"note: {note}" for note in notes]
        return "\n".join(lines)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _side_by_side(blade: EnginePlan, layered: EnginePlan) -> List[str]:
    def profile_cell(profile: Optional[QueryProfile], attr: str, fmt=str) -> str:
        if profile is None:
            return "-"
        return fmt(getattr(profile, attr))

    rows: List[Tuple[str, str, str]] = [
        ("wall time",
         profile_cell(blade.profile, "wall_seconds", _fmt_seconds),
         profile_cell(layered.profile, "wall_seconds", _fmt_seconds)),
        ("fetch time",
         profile_cell(blade.profile, "fetch_seconds", _fmt_seconds),
         profile_cell(layered.profile, "fetch_seconds", _fmt_seconds)),
        ("rows",
         profile_cell(blade.profile, "rows"),
         profile_cell(layered.profile, "rows")),
        ("periods processed",
         profile_cell(blade.profile, "periods_processed"),
         profile_cell(layered.profile, "periods_processed")),
        ("index probes",
         profile_cell(blade.profile, "index_probes"),
         profile_cell(layered.profile, "index_probes")),
        ("routine calls",
         str(sum(int(r.get("calls", 0)) for r in blade.profile.routines.values()))
         if blade.profile else "-",
         str(sum(int(r.get("calls", 0)) for r in layered.profile.routines.values()))
         if layered.profile else "-"),
    ]
    for metric in ("chars", "selects", "joins", "not_exists", "predicates"):
        rows.append((
            f"sql {metric}",
            str(blade.complexity.get(metric, "-")),
            str(layered.complexity.get(metric, "-")),
        ))
    headers = ("metric", "blade (integrated)", "layered (TimeDB-style)")
    table = [(name, b, l) for name, b, l in rows]
    widths = [
        max([len(headers[i])] + [len(row[i]) for row in table]) for i in range(3)
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(3)),
        "  ".join("-" * widths[i] for i in range(3)),
    ]
    lines += ["  ".join(row[i].ljust(widths[i]) for i in range(3)) for row in table]
    return lines


def _query_plan(raw_connection, sql: str, params=()) -> List[str]:
    """SQLite's EXPLAIN QUERY PLAN details for *sql* (best effort)."""
    try:
        rows = raw_connection.execute(f"EXPLAIN QUERY PLAN {sql}", params).fetchall()
    except Exception:  # the plan is advisory; never fail the report
        return []
    return [str(row[-1]) for row in rows]


def _group_by_keys(tail: str) -> List[str]:
    match = _GROUP_BY_RE.search(tail)
    if not match:
        return []
    keys = []
    for part in match["keys"].split(","):
        name = part.strip()
        if "." in name:
            name = name.rsplit(".", 1)[1]
        if name:
            keys.append(name)
    return keys


def _time_point_seconds(text: str, now_seconds: int) -> int:
    text = text.strip()
    if text.upper() == "NOW":
        return now_seconds
    return parse_chronon(text).seconds


def explain_temporal(
    connection: TipConnection,
    statement: str,
    *,
    session: Optional[TsqlSession] = None,
) -> ExplainReport:
    """Run *statement* under both engines and build the cost report.

    *statement* may or may not carry the ``EXPLAIN TEMPORAL`` prefix;
    TSQL2 statement modifiers are translated first.  The layered side
    evaluates against a mirror of the referenced temporal tables at
    the connection's current ``NOW``, so both engines see the same
    data in the same temporal context.
    """
    inner = strip_explain(statement)
    if inner is None:
        inner = statement.strip().rstrip(";")
    if session is None:
        session = TsqlSession(connection)
    else:
        session.rescan()
    hits_before = _compiled.CACHE.stats()["hits"]
    translated = session.translate(inner)
    cache_snapshot = _compiled.stats()
    statement_cache = {
        "enabled": cache_snapshot["enabled"],
        "hit": cache_snapshot["hits"] > hits_before,
        "entries": cache_snapshot["entries"],
        "capacity": cache_snapshot["capacity"],
        "generation": cache_snapshot["generation"],
    }

    # The planner's verdict is computed before the profiled run below:
    # profiling forces the naive path (the kernels would hide the blade
    # work the report exists to show), so this is the only place the
    # report can say what a *normal* execution would do.
    from repro.plan import planner as _planner

    plan_strategy = _planner.describe(connection, translated)

    blade = EnginePlan(
        engine="blade",
        sql=translated,
        complexity=translator.sql_complexity(translated),
    )
    # The per-routine breakdown comes from instrument counters, which
    # sit behind the process-wide metrics switch; flip it on for the
    # duration of the comparison if the user hasn't already.
    metrics_were_on = _obs.is_enabled()
    if not metrics_were_on:
        _obs.enable()
    try:
        with _profile.forced():
            cursor = connection.execute(translated)
            if cursor.description is not None:
                cursor.fetchall()
            blade.profile = cursor.profile
        blade.plan = _query_plan(connection.raw, translated)

        layered = _layered_side(connection, session, translated)
    finally:
        if not metrics_were_on:
            _obs.disable()
    return ExplainReport(
        statement=inner, translated=translated, blade=blade, layered=layered,
        statement_cache=statement_cache, plan_strategy=plan_strategy,
    )


def _layered_side(
    connection: TipConnection,
    session: TsqlSession,
    translated: str,
) -> EnginePlan:
    layered = EnginePlan(engine="layered", sql="")
    try:
        parts = split_select(translated)
        from_items = _parse_from_items(parts.from_list)
    except TranslationError as exc:
        layered.note = f"layered comparison skipped: {exc}"
        return layered
    temporal = session.temporal_tables
    tables = [(table, alias) for table, alias in from_items if table.lower() in temporal]
    if not tables:
        layered.note = "layered comparison skipped: no temporal tables in FROM"
        return layered

    now_seconds = connection.statement_now_seconds()
    engine = LayeredEngine(now=Chronon(now_seconds))
    try:
        for table in {table for table, _alias in tables}:
            flatten_from_tip(
                connection, table, engine,
                valid_column=temporal[table.lower()],
            )
    except (TipError, TranslationError) as exc:
        engine.close()
        layered.note = (
            "layered mirror impossible (the flat encoding cannot hold this "
            f"data): {exc}"
        )
        return layered

    try:
        _run_layered(engine, layered, translated, parts, tables, now_seconds)
    finally:
        engine.close()
    return layered


def _run_layered(
    engine: LayeredEngine,
    layered: EnginePlan,
    translated: str,
    parts,
    tables: Sequence[Tuple[str, str]],
    now_seconds: int,
) -> None:
    """Classify the statement, run the layered op, and fill the plan."""
    first = tables[0][0]
    schema = engine.schema(first)
    keys = _group_by_keys(parts.tail)
    range_match = _RANGE_LITERAL_RE.search(translated)
    instant_match = _CONTAINS_INSTANT_RE.search(translated)

    op = None  # (operation name, callable, translated layered SQL, params)
    if _GROUP_UNION_RE.search(translated) and keys:
        op = (
            f"total_length({first!r}, {keys})",
            lambda: engine.total_length(first, keys),
            translator.translate_total_length(schema, keys),
            {"now": now_seconds},
        )
    elif len(tables) >= 2 and _OVERLAPS_RE.search(translated):
        second = tables[1][0]
        op = (
            f"overlap_join({first!r}, {second!r})",
            lambda: engine.overlap_join(first, second),
            translator.translate_overlap_join(
                schema, engine.schema(second),
                schema.column_names(), engine.schema(second).column_names(),
            ),
            {"now": now_seconds},
        )
    elif instant_match:
        at = _time_point_seconds(instant_match["at"], now_seconds)
        op = (
            f"snapshot({first!r}, at={instant_match['at'].strip()!r})",
            lambda: engine.snapshot(first, at),
            translator.translate_snapshot(schema, schema.column_names()),
            {"now": now_seconds, "at": at},
        )
    elif range_match:
        lo = _time_point_seconds(range_match["lo"], now_seconds)
        hi = _time_point_seconds(range_match["hi"], now_seconds)
        op = (
            f"timeslice({first!r}, ...)",
            lambda: engine.timeslice(first, lo, hi),
            translator.translate_timeslice(schema, schema.column_names()),
            {"now": now_seconds, "lo": lo, "hi": hi},
        )
    elif _GROUP_UNION_RE.search(translated):
        op = (
            f"coalesce({first!r})",
            lambda: engine.coalesce(first, schema.column_names()),
            translator.translate_coalesce(schema, schema.column_names()),
            {"now": now_seconds},
        )

    if op is None:
        layered.sql = translator.translate_timeslice(schema, schema.column_names())
        layered.complexity = translator.sql_complexity(layered.sql)
        layered.note = (
            "no layered equivalent for this statement shape; showing the "
            "static complexity of the representative timeslice translation"
        )
        return

    name, runner, layered_sql, params = op
    layered.operation = name
    layered.sql = layered_sql
    layered.complexity = translator.sql_complexity(layered_sql)
    recorder = StatementRecorder(layered_sql, engine="layered").start()
    try:
        rows = runner()
    except Exception as exc:
        recorder.finish(ok=False, error=str(exc))
        layered.note = f"layered execution failed: {exc}"
        return
    recorder.profile.rows = len(rows)
    layered.profile = recorder.finish(rowcount=len(rows))
    layered.plan = _query_plan(engine.raw, layered_sql, params)
