"""TSQL2-style statement modifiers over TIP SQL (paper §5 future work).

"As future work, we will investigate how closely TIP can approach a
full-featured temporal query language like TSQL2 in expressive power"
— this package is that investigation: a small preprocessor that
rewrites TSQL2's statement modifiers (``SNAPSHOT [AT t]``,
``VALIDTIME [PERIOD p]``, ``NONSEQUENCED VALIDTIME``) into plain SQL
over the TIP routines, without touching the engine.
"""

from repro.tsql.compiled import CompiledStatement, StatementCompiler, compile_statement
from repro.tsql.preprocessor import TsqlSession, strip_explain, translate_tsql

__all__ = [
    "TsqlSession", "translate_tsql", "strip_explain", "explain_temporal",
    "CompiledStatement", "StatementCompiler", "compile_statement",
]


def explain_temporal(*args, **kwargs):
    """Lazy proxy for :func:`repro.tsql.explain.explain_temporal`.

    The explain harness pulls in the layered engine and the profiler;
    importing it lazily keeps ``import repro.tsql`` light for users who
    only want the preprocessor.
    """
    from repro.tsql.explain import explain_temporal as _explain

    return _explain(*args, **kwargs)
