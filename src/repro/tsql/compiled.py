"""The compiled-statement subsystem: normalize once, translate once.

TIP's performance argument (and ROADMAP open item 1) is that an
integrated engine beats re-translating layered SQL per call — yet until
this module the stack re-ran the tSQL preprocessor and the layered
clause rewriter from scratch on every textually-identical statement.
Here a statement is **compiled once** into a :class:`CompiledStatement`
(the translated TIP SQL plus its parameter count and DDL flag) and
served from a bounded, thread-safe LRU on every later execution, so a
hot query costs a fingerprint plus parameter substitution.

**Normalization** (:func:`normalize_statement`) produces the cache
fingerprint: whitespace outside single-quoted literals collapses to
single spaces and trailing semicolons drop, while literal bodies are
preserved byte-for-byte.  The normalized text is what gets compiled, so
the cached plan is a pure function of the fingerprint — no first-seen
representative can leak one caller's spelling into another's plan.
Statements whose meaning could hinge on the collapsed characters
(``--``/``/*`` comments, double-quoted or bracketed identifiers outside
literals) are deemed *uncacheable* and compile per call, exactly as
before this module existed.

**Keying and invalidation.**  The LRU key is ``(normalized text,
temporal-table registry, generation)``.  The registry component makes
two sessions with different ``register()`` overrides never share a
plan; the process-wide *generation* is bumped by
:meth:`~repro.tsql.preprocessor.TsqlSession.rescan` (when discovery
actually changes), by ``register()``, and by every DDL statement the
server commits — so schema motion orphans every stale key at once.
Arming a fault plan (:func:`repro.faults.arm`) clears the cache and the
armed path bypasses it entirely, mirroring the PR 5 codec caches:
chaos runs translate every statement afresh and stay deterministic.
The ``stmt.cache`` injection point fires on that path.

**Observability.**  :func:`stats` feeds the ``caches`` section of obs
snapshots; :func:`stats_counters` flattens the monotonic counts to
``tsql.cache.{hit,miss,evict,invalidate}`` for metrics tables, the
Prometheus exposition, and per-query profile deltas.  Both are inert
zeros while the cache is off.

Knobs (read once at import; adjustable via :func:`configure`):

* ``TIP_STATEMENT_CACHE=0`` — disable the cache (compile per call);
* ``TIP_STATEMENT_CACHE_SIZE`` — capacity (default 256 plans).
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.codec.cache import LRUCache
from repro.faults import state as _FAULTS
from repro.obs import flight as _flight

__all__ = [
    "CompiledStatement", "StatementCompiler", "state", "CACHE",
    "normalize_statement", "compile_statement", "compile_normalized",
    "count_params", "discover_valid_columns",
    "generation", "bump_generation", "configure", "clear_cache",
    "stats", "stats_counters", "DEFAULT_CACHE_SIZE",
]

DEFAULT_CACHE_SIZE = 256

_FALSY = frozenset({"0", "false", "off", "no", ""})


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_enabled() -> bool:
    return os.environ.get("TIP_STATEMENT_CACHE", "1").strip().lower() not in _FALSY


class CacheState:
    """The process-wide switch, read on hot paths without a lock."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


state = CacheState()

#: normalized-statement -> CompiledStatement, keyed with the registry
#: fingerprint and generation (see module docstring).
CACHE = LRUCache("statement", _env_int("TIP_STATEMENT_CACHE_SIZE", DEFAULT_CACHE_SIZE))

_GEN_LOCK = threading.Lock()
_GENERATION = 0
_INVALIDATIONS = 0

_WS_RE = re.compile(r"\s+")
#: Outside literals these make whitespace or case semantically load-bearing
#: (line comments, quoted/bracketed identifiers) — such statements are
#: compiled per call rather than risk a wrong fingerprint collision.
_UNCACHEABLE_RE = re.compile(r'--|/\*|["\[`]')
_DDL_RE = re.compile(r"^\s*(CREATE|DROP|ALTER)\b", re.IGNORECASE)


@dataclass(frozen=True)
class CompiledStatement:
    """One statement compiled through the tSQL + layered translators.

    ``statement`` is the (normalized) source text, ``sql`` the
    translated TIP SQL actually executed, ``params`` the positional
    placeholder count, ``ddl`` whether committing it must bump the
    registry generation, and ``generation`` the generation it was
    compiled under — a prepared handle whose generation has moved is
    *stale* and must be re-prepared.
    """

    statement: str
    sql: str
    params: int
    ddl: bool
    generation: int
    #: The temporal planner's matched kernel shape for ``sql`` (or None
    #: when the statement is not kernel-evaluable).  Matched once at
    #: compile time so the hot prepared path pays a single attribute
    #: load, and invalidated exactly when the plan is: this cache is
    #: generation-keyed.  Runtime vetoes (schema types, row counts,
    #: armed faults) are still checked per execution by the planner.
    shape: Optional[object] = None


def normalize_statement(statement: str) -> Optional[str]:
    """The cache fingerprint of *statement*, or None when uncacheable.

    Splits on single quotes: even segments are SQL text (whitespace
    collapsed), odd segments are literal bodies (kept verbatim — a
    doubled ``''`` escape yields an empty even segment, so literal
    content stays on odd segments).  Trailing semicolons drop.  SQL
    text containing comments or quoted identifiers disqualifies the
    statement from caching entirely — collapsing a newline inside a
    ``--`` comment would change its meaning.
    """
    parts = statement.split("'")
    pieces = []
    for index, part in enumerate(parts):
        if index % 2:
            pieces.append(part)
            continue
        if _UNCACHEABLE_RE.search(part):
            return None
        pieces.append(_WS_RE.sub(" ", part))
    text = "'".join(pieces).strip()
    while text.endswith(";"):
        text = text[:-1].rstrip()
    return text


def count_params(statement: str) -> int:
    """Positional ``?`` placeholders outside single-quoted literals.

    The same count a :class:`CompiledStatement` carries; exposed so
    code generators (the linq compiler's :class:`ParamSpec`) can
    cross-check their collected slots against the emitted text.
    """
    count = 0
    for index, part in enumerate(statement.split("'")):
        if index % 2 == 0:
            count += part.count("?")
    return count


_count_params = count_params


def generation() -> int:
    """The current registry generation (monotonic, process-wide)."""
    with _GEN_LOCK:
        return _GENERATION


def bump_generation() -> int:
    """Invalidate every compiled plan: schema or registry moved.

    Returns the new generation.  Old-generation keys become
    unreachable immediately; the cache is also cleared so they don't
    linger as dead weight until eviction.
    """
    global _GENERATION, _INVALIDATIONS
    with _GEN_LOCK:
        _GENERATION += 1
        _INVALIDATIONS += 1
        new_generation = _GENERATION
    CACHE.clear()
    if _flight.state.enabled:
        _flight.record("cache.stmt.invalidate", generation=new_generation)
    return new_generation


_SHAPE_MATCHER = None


def _match_kernel_shape(sql: str):
    """The planner's shape for *sql*, or None (lazy import: cycle).

    Goes through the planner's generation-keyed shape LRU, not the raw
    matcher: with the statement cache disabled (or thrashing) every
    call re-compiles, and a candidate-but-unmatched statement would
    otherwise re-pay the full regex matcher per call.
    """
    global _SHAPE_MATCHER
    if _SHAPE_MATCHER is None:
        from repro.plan import planner

        _SHAPE_MATCHER = (planner.is_candidate, planner._lookup_shape)
    is_candidate, lookup = _SHAPE_MATCHER
    return lookup(sql) if is_candidate(sql) else None


def _compile(statement: str, valid_columns: Dict[str, str], gen: int) -> CompiledStatement:
    from repro.tsql.preprocessor import translate_tsql  # lazy: avoids an import cycle

    sql = translate_tsql(statement, valid_columns)
    ddl = bool(_DDL_RE.match(sql))
    return CompiledStatement(
        statement=statement,
        sql=sql,
        params=_count_params(statement),
        ddl=ddl,
        generation=gen,
        shape=None if ddl else _match_kernel_shape(sql),
    )


def compile_statement(statement: str, valid_columns: Dict[str, str]) -> CompiledStatement:
    """Compile *statement* under *valid_columns*, served from the LRU.

    With an armed fault plan the ``stmt.cache`` point fires and the
    cache is bypassed wholesale (like the codec decode cache), so chaos
    runs observe every translation afresh and stay deterministic.  With
    the cache disabled this is exactly a per-call translation.
    """
    if _FAULTS.plan is not None:
        _FAULTS.plan.apply("stmt.cache")
        return _compile(statement.strip(), valid_columns, generation())
    if not state.enabled:
        return _compile(statement.strip(), valid_columns, generation())
    normalized = normalize_statement(statement)
    if normalized is None:
        return _compile(statement.strip(), valid_columns, generation())
    gen = generation()
    key: Tuple = (normalized, tuple(sorted(valid_columns.items())), gen)
    cached = CACHE.get(key)
    if cached is not None:
        if _flight.state.enabled:
            _flight.record("cache.stmt.hit", sql=normalized[:120])
        return cached
    compiled = _compile(normalized, valid_columns, gen)
    CACHE.put(key, compiled)
    if _flight.state.enabled:
        _flight.record("cache.stmt.miss", sql=normalized[:120])
    return compiled


def compile_normalized(statement: str, valid_columns: Dict[str, str]) -> CompiledStatement:
    """:func:`compile_statement` for **already-normalized** text.

    The linq compiler emits statements that are their own fingerprint
    (``normalize_statement(s) == s`` by construction: single spaces,
    literals via constructor calls, no comments or quoted
    identifiers), so this fast path keys the cache on the text
    directly and skips the normalization scan.  Faults and the
    disabled switch behave exactly as in :func:`compile_statement`.
    """
    if _FAULTS.plan is not None:
        _FAULTS.plan.apply("stmt.cache")
        return _compile(statement, valid_columns, generation())
    if not state.enabled:
        return _compile(statement, valid_columns, generation())
    gen = generation()
    key: Tuple = (statement, tuple(sorted(valid_columns.items())), gen)
    cached = CACHE.get(key)
    if cached is not None:
        if _flight.state.enabled:
            _flight.record("cache.stmt.hit", sql=statement[:120])
        return cached
    plan = _compile(statement, valid_columns, gen)
    CACHE.put(key, plan)
    if _flight.state.enabled:
        _flight.record("cache.stmt.miss", sql=statement[:120])
    return plan


def discover_valid_columns(connection) -> Dict[str, str]:
    """Validity columns auto-discovered from sqlite_master.

    The first column declared ``ELEMENT`` per table, lower-cased table
    name as the key — the same rule :class:`TsqlSession` applies.
    """
    from repro.tsql.preprocessor import _ELEMENT_COLUMN_RE  # lazy: import cycle

    discovered: Dict[str, str] = {}
    rows = connection.query(
        "SELECT name, sql FROM sqlite_master WHERE type = 'table' AND sql IS NOT NULL"
    )
    for name, ddl in rows:
        match = _ELEMENT_COLUMN_RE.search(ddl or "")
        if match:
            discovered.setdefault(name.lower(), match.group(1))
    return discovered


class StatementCompiler:
    """Schema-aware compile front for a server process (thread-safe).

    Owns the discovered validity-column registry for one database and
    re-discovers it lazily whenever the generation has moved (a DDL
    commit bumps it), so every handler thread compiles against the
    current schema without rescanning per statement.
    """

    def __init__(self, connection) -> None:
        self._connection = connection
        self._lock = threading.Lock()
        self._valid_columns: Dict[str, str] = {}
        self._scanned_generation = -1

    def valid_columns(self) -> Dict[str, str]:
        """The registry, rescanned iff the generation moved."""
        gen = generation()
        with self._lock:
            if self._scanned_generation != gen:
                self._valid_columns = discover_valid_columns(self._connection)
                self._scanned_generation = gen
            return dict(self._valid_columns)

    def compile(self, statement: str) -> CompiledStatement:
        return compile_statement(statement, self.valid_columns())


def configure(*, enabled: Optional[bool] = None, size: Optional[int] = None) -> None:
    """Adjust the statement-cache knobs at runtime.

    Disabling also clears the cache, so re-enabling starts cold and the
    inert-when-off guarantee ("a disabled cache stays empty") holds
    regardless of prior history.
    """
    if size is not None:
        CACHE.resize(size)
    if enabled is not None:
        state.enabled = enabled
        if not enabled:
            CACHE.clear()


def clear_cache(reset_stats: bool = False) -> None:
    """Drop every compiled plan; optionally zero the stats.

    Plans are pure translations, so clearing affects only future hit
    ratios, never results.  Called by :func:`repro.faults.arm`.
    """
    global _INVALIDATIONS
    CACHE.clear(reset_stats=reset_stats)
    if reset_stats:
        with _GEN_LOCK:
            _INVALIDATIONS = 0


def stats() -> Dict:
    """The cache stats plus switch and generation, as plain data."""
    snap = CACHE.stats()
    with _GEN_LOCK:
        snap["invalidations"] = _INVALIDATIONS
        snap["generation"] = _GENERATION
    snap["enabled"] = state.enabled
    return snap


def stats_counters() -> Dict[str, int]:
    """The monotonic stats as flat ``tsql.cache.*`` counter names.

    Merged into metrics snapshots, the Prometheus exposition, and
    :class:`~repro.obs.profile.QueryProfile` registry diffs, so
    statement-cache traffic is visible wherever codec cache traffic is.
    """
    snap = CACHE.stats()
    with _GEN_LOCK:
        invalidations = _INVALIDATIONS
    return {
        "tsql.cache.hit": snap["hits"],
        "tsql.cache.miss": snap["misses"],
        "tsql.cache.evict": snap["evictions"],
        "tsql.cache.invalidate": invalidations,
    }
