"""A stdlib HTTP telemetry endpoint for a running TIP process.

One :class:`TelemetryServer` (a ``ThreadingHTTPServer`` on its own
daemon threads) makes the observability surface scrapeable while the
query server keeps serving:

* ``GET /metrics`` — the process snapshot in the Prometheus text
  exposition (:func:`repro.obs.export.render_prometheus`), plus the
  connection-pool gauges when the owner passed a stats callable;
* ``GET /debug/flight`` — the flight ring as JSONL, filterable with
  ``?session=`` / ``?trace=`` / ``?kind=`` / ``?last=``;
* ``GET /debug/spans`` — the trace buffer as JSONL span records,
  filterable with ``?trace=`` (the cross-process timeline input);
* ``GET /debug/profiles`` — recent :class:`QueryProfile` records
  (``?last=`` bounds the count) as JSON;
* ``GET /debug/slow`` — the slow-query ring, same shape;
* ``GET /healthz`` — liveness.

Every handler reads shared state only through the locked snapshot
methods the rest of the package already exposes, so scraping is safe
under full concurrent query traffic — the property
``tests/test_telemetry_http.py`` hammers with eight pooled clients.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.obs import flight as _flight
from repro.obs import profile as _profile
from repro.obs.export import render_prometheus, span_records

__all__ = ["TelemetryServer"]


def _pool_gauge_lines(stats: dict) -> list:
    """The pool's obs-independent gauges as Prometheus lines."""
    lines = []
    for name in ("readers", "checkouts", "waits", "max_busy", "reads",
                 "writes", "checkpoints", "checkpoint_errors"):
        if name in stats:
            metric = f"tip_pool_{name}"
            lines += [f"# TYPE {metric} gauge", f"{metric} {stats[name]}"]
    return lines


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "TipTelemetry/1.0"
    #: Set by TelemetryServer: () -> pool stats dict, or None.
    pool_stats: Optional[Callable[[], dict]] = None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stderr noise helps no one

    def _reply(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        try:
            self.wfile.write(payload)
        except OSError:
            pass  # scraper gone mid-reply; nothing to save

    def do_GET(self) -> None:  # noqa: N802 - http.server's spelling
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)

        def param(name: str) -> Optional[str]:
            values = query.get(name)
            return values[0] if values else None

        def int_param(name: str) -> Optional[int]:
            raw = param(name)
            try:
                return int(raw) if raw is not None else None
            except ValueError:
                return None

        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            text = render_prometheus(obs.snapshot())
            stats_fn = type(self).pool_stats
            if stats_fn is not None:
                text += "\n".join(_pool_gauge_lines(stats_fn())) + "\n"
            self._reply(text, "text/plain; version=0.0.4; charset=utf-8")
        elif route == "/debug/flight":
            entries = _flight.snapshot(
                kind=param("kind"), session=param("session"),
                trace_id=param("trace"), last=int_param("last"),
            )
            body = "".join(json.dumps(e, sort_keys=True) + "\n" for e in entries)
            self._reply(body, "application/x-ndjson")
        elif route == "/debug/spans":
            events = obs.get_trace_buffer().events(last=int_param("last"))
            records = span_records(events)
            trace = param("trace")
            if trace is not None:
                records = [r for r in records if r.get("trace_id") == trace]
            body = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
            self._reply(body, "application/x-ndjson")
        elif route == "/debug/profiles":
            profiles = _profile.recent_profiles(int_param("last"))
            self._reply(json.dumps({
                "enabled": _profile.state.enabled,
                "profiles": [p.as_dict() for p in profiles],
            }, sort_keys=True), "application/json")
        elif route == "/debug/slow":
            profiles = _profile.slow_log(int_param("last"))
            self._reply(json.dumps({
                "threshold": _profile.state.slow_threshold,
                "profiles": [p.as_dict() for p in profiles],
            }, sort_keys=True), "application/json")
        elif route == "/healthz":
            self._reply("ok\n", "text/plain")
        else:
            self._reply(json.dumps({"error": f"unknown path {parsed.path!r}"}),
                        "application/json", status=404)


class TelemetryServer:
    """Serve the telemetry endpoint on a background thread.

    *pool_stats*, when given, is a zero-argument callable (typically
    ``TipServer.pool.stats``) whose dict is appended to ``/metrics`` as
    ``tip_pool_*`` gauges.  Port 0 picks a free port; :attr:`address`
    reports the bound one.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool_stats: Optional[Callable[[], dict]] = None,
    ) -> None:
        handler = type("_BoundTelemetryHandler", (_TelemetryHandler,),
                       {"pool_stats": staticmethod(pool_stats) if pool_stats else None})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._httpd.server_address[:2]

    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            raise RuntimeError("telemetry server already started")
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(poll_interval=0.05),
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
