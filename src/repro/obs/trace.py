"""Span-style trace events in a bounded ring buffer.

A span times one named operation (a temporal aggregate sweep, a server
frame) and records a :class:`TraceEvent` into the process-wide
:class:`TraceBuffer`; the buffer is a ``deque(maxlen=...)`` so tracing
never grows without bound.  Each span also feeds a latency histogram
named ``<name>.seconds`` in the active metrics registry, so traces and
metrics stay consistent.

When observability is disabled, :func:`span` returns a shared no-op
context manager — no allocation, no clock read.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.obs.registry import get_registry, state

__all__ = ["TraceEvent", "TraceBuffer", "span", "get_trace_buffer", "set_trace_buffer"]

#: Default ring capacity; enough for a workload's tail without ever
#: mattering for memory.
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class TraceEvent:
    """One completed span."""

    name: str
    seconds: float
    ok: bool = True
    meta: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"name": self.name, "seconds": self.seconds, "ok": self.ok, **(
            {"meta": self.meta} if self.meta else {}
        )}


class TraceBuffer:
    """A thread-safe ring buffer of the most recent trace events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, last: Optional[int] = None) -> List[TraceEvent]:
        """The buffered events, oldest first (optionally only the last *n*)."""
        with self._lock:
            items = list(self._events)
        return items if last is None else items[-last:]

    def events_for_trace(self, trace_id: str) -> List[TraceEvent]:
        """All buffered spans carrying *trace_id*, oldest first.

        Spans join a trace through their ``meta["trace_id"]`` — the
        propagated context of :mod:`repro.obs.profile` — so one
        client-issued statement shows its client- and server-side
        spans here as a single trace.
        """
        return [
            event for event in self.events()
            if event.meta.get("trace_id") == trace_id
        ]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_default_buffer = TraceBuffer()


def get_trace_buffer() -> TraceBuffer:
    return _default_buffer


def set_trace_buffer(buffer: TraceBuffer) -> TraceBuffer:
    """Swap the active trace buffer; returns the previous one."""
    global _default_buffer
    previous = _default_buffer
    _default_buffer = buffer
    return previous


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "meta", "_start")

    def __init__(self, name: str, meta: Dict) -> None:
        self.name = name
        self.meta = meta

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self._start
        get_trace_buffer().record(
            TraceEvent(self.name, elapsed, ok=exc_type is None, meta=self.meta)
        )
        get_registry().histogram(f"{self.name}.seconds").observe(elapsed)
        return False


def span(name: str, **meta):
    """Context manager timing one operation; inert when disabled."""
    if not state.enabled:
        return _NULL_SPAN
    return _Span(name, meta)
