"""The flight recorder: a bounded ring of structured engine events.

Counters say *how often*; the flight recorder says *when, in what
order*.  Every interesting moment in the concurrent server — statement
begin/end, BATCH and stream lifecycle, reader-pool checkouts and
writer-lock waits, WAL checkpoints, statement/decode-cache traffic,
fired faults — lands here as one :class:`FlightEvent`, stamped with a
monotonic timestamp, a monotonically increasing sequence number, and
the session's connection key.  The ring is a ``deque(maxlen=...)``;
appends and sequence numbers both ride CPython-atomic operations
(``deque.append`` and ``next`` on an ``itertools.count``), so the
record path takes no lock at all and memory is bounded by
construction.  Readers snapshot with ``list(ring)`` and simply retry
on the rare concurrent-mutation ``RuntimeError``.

The recorder follows the package's inert-when-off discipline: every
call site guards on ``flight.state.enabled`` — one attribute load on a
module singleton — before calling into this module, so a disabled
recorder costs nothing and records nothing (settrace-asserted in
``tests/test_flight.py``, the same proof the profiler carries).

**Determinism.**  Event *content* is deterministic for a deterministic
workload: kinds, session keys, SQL texts, row counts, and fault
ordinals are pure functions of what the workload did.  Timestamps,
sequence numbers, and trace ids are not — :meth:`FlightEvent.signature`
(and :func:`signatures`) project an event down to its deterministic
core, which is what the double-run chaos tests compare.

**Crash dumps.**  :func:`configure` can name a JSONL path; on an
unhandled server error the frame loop calls :func:`crash_dump`, which
writes the entire ring (plus a final ``crash`` event naming the error)
to that file and never raises — a post-mortem timeline for every chaos
failure, replacing "the counters moved" with "here is what happened".
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from time import monotonic
from typing import Dict, List, Optional

__all__ = [
    "FlightEvent", "FlightRecorder", "state",
    "enable", "disable", "is_enabled", "configure",
    "get_recorder", "set_recorder",
    "record", "events", "snapshot", "clear", "signatures",
    "dump", "crash_dump",
    "DEFAULT_CAPACITY",
]

#: Default ring capacity — generous for a workload tail, irrelevant for
#: memory (events are a few hundred bytes each).
DEFAULT_CAPACITY = 4096


class FlightState:
    """The process-wide switch plus crash-dump target, on one singleton.

    Hot paths read ``state.enabled`` with a plain attribute load and
    skip the call into this module entirely when it is off.
    """

    __slots__ = ("enabled", "crash_dump_path")

    def __init__(self) -> None:
        self.enabled = False
        self.crash_dump_path: Optional[str] = None


state = FlightState()


def enable() -> None:
    """Turn flight recording on (the ring starts collecting)."""
    state.enabled = True


def disable() -> None:
    """Turn flight recording off (the ring keeps what it has)."""
    state.enabled = False


def is_enabled() -> bool:
    return state.enabled


def configure(
    *,
    capacity: Optional[int] = None,
    crash_dump_path: "str | None | bool" = False,
) -> None:
    """Adjust the ring capacity and/or the crash-dump target.

    *crash_dump_path* uses ``False`` as the "leave it alone" sentinel
    so ``None`` can explicitly clear a previously configured path.
    """
    if capacity is not None:
        get_recorder().resize(capacity)
    if crash_dump_path is not False:
        state.crash_dump_path = crash_dump_path


class FlightEvent:
    """One recorded moment: what, when, whose session, which trace."""

    __slots__ = ("seq", "ts", "kind", "session", "trace_id", "data")

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        session: Optional[str],
        trace_id: Optional[str],
        data: Dict,
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.session = session
        self.trace_id = trace_id
        self.data = data

    def as_dict(self) -> Dict:
        """The JSONL/wire form of this event."""
        entry: Dict = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        if self.session is not None:
            entry["session"] = self.session
        if self.trace_id is not None:
            entry["trace_id"] = self.trace_id
        if self.data:
            entry["data"] = self.data
        return entry

    def signature(self) -> str:
        """The event's deterministic core, as one comparable string.

        Drops everything a re-run legitimately changes — timestamps,
        sequence numbers, trace/span ids, and float-valued payload
        entries (durations) — keeping kind, session, and the stable
        payload.  Two seeded runs of the same workload must produce
        identical signature sequences; the chaos tests assert exactly
        that.
        """
        stable = {
            key: value for key, value in self.data.items()
            if not isinstance(value, float) and "span" not in key
        }
        payload = " ".join(
            f"{key}={stable[key]!r}" for key in sorted(stable)
        )
        head = f"{self.kind}[{self.session or ''}]"
        return f"{head} {payload}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightEvent({self.seq}, {self.kind!r}, session={self.session!r})"


class FlightRecorder:
    """A thread-safe bounded ring of :class:`FlightEvent` entries.

    The record path is deliberately lock-free and allocation-light:
    ``deque.append`` on a bounded deque and ``next()`` on an
    ``itertools.count`` are both atomic in CPython, and the ring holds
    plain tuples — no :class:`FlightEvent` ``__init__`` frame runs on
    the hot path; events materialize lazily when the ring is *read*.
    The lock below only serializes structural operations
    (clear/resize) against each other; snapshot readers retry the rare
    mutated-during-iteration ``RuntimeError`` instead of stalling
    writers.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)

    def record(
        self,
        kind: str,
        session: Optional[str] = None,
        trace_id: Optional[str] = None,
        **data,
    ) -> None:
        """Append one event (lock-free; see the class docstring)."""
        self._events.append(
            (next(self._seq), monotonic(), kind, session, trace_id, data)
        )

    def _snapshot_raw(self) -> List[tuple]:
        """A point-in-time copy of the ring, retrying concurrent appends."""
        while True:
            try:
                return list(self._events)
            except RuntimeError:  # pragma: no cover - needs a racing writer
                continue

    def _snapshot(self) -> List[FlightEvent]:
        return [FlightEvent(*entry) for entry in self._snapshot_raw()]

    def events(
        self,
        *,
        kind: Optional[str] = None,
        session: Optional[str] = None,
        trace_id: Optional[str] = None,
        last: Optional[int] = None,
    ) -> List[FlightEvent]:
        """The buffered events, oldest first, optionally filtered.

        *kind* matches exactly or as a dotted prefix (``"stmt"``
        selects ``stmt.begin`` and ``stmt.end``); *last* keeps only
        the newest *n* **after** filtering.
        """
        items = self._snapshot()
        if kind is not None:
            items = [e for e in items
                     if e.kind == kind or e.kind.startswith(kind + ".")]
        if session is not None:
            items = [e for e in items if e.session == session]
        if trace_id is not None:
            items = [e for e in items if e.trace_id == trace_id]
        if last is not None and last > 0:
            items = items[-last:]
        return items

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def resize(self, capacity: int) -> None:
        with self._lock:
            self.capacity = capacity
            self._events = deque(self._snapshot_raw(), maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)


_default_recorder = FlightRecorder()


def get_recorder() -> FlightRecorder:
    return _default_recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the active recorder; returns the previous one."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def record(
    kind: str,
    session: Optional[str] = None,
    trace_id: Optional[str] = None,
    **data,
) -> None:
    """Record one event into the active ring.

    Call sites guard on ``flight.state.enabled`` themselves so the
    disabled path never enters this module; the internal check below
    only covers direct callers that skipped the guard.  The append is
    inlined (rather than delegated to :meth:`FlightRecorder.record`)
    to keep the always-on cost to a single Python frame.
    """
    if state.enabled:
        recorder = _default_recorder
        recorder._events.append(
            (next(recorder._seq), monotonic(), kind, session, trace_id,
             data)
        )


def events(**filters) -> List[FlightEvent]:
    """The active ring's events (see :meth:`FlightRecorder.events`)."""
    return _default_recorder.events(**filters)


def snapshot(**filters) -> List[Dict]:
    """The active ring's (filtered) events in plain-dict form."""
    return [event.as_dict() for event in _default_recorder.events(**filters)]


def clear() -> None:
    """Drop every buffered event from the active ring."""
    _default_recorder.clear()


def signatures(**filters) -> List[str]:
    """The deterministic signature sequence of the (filtered) ring."""
    return [event.signature() for event in _default_recorder.events(**filters)]


def dump(path: str, **filters) -> int:
    """Write the (filtered) ring to *path* as JSONL; the event count."""
    entries = snapshot(**filters)
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return len(entries)


def crash_dump(reason: str, error: Optional[str] = None) -> Optional[str]:
    """Dump the ring to the configured crash path; the path, or None.

    Appends a final ``crash`` event naming *reason* so the dump is
    self-describing, then writes everything as JSONL.  Never raises —
    a broken dump target must not mask the error being reported — and
    does nothing when no path is configured or recording is off.
    """
    path = state.crash_dump_path
    if path is None or not state.enabled:
        return None
    try:
        record("crash", reason=reason, **({"error": error} if error else {}))
        dump(path)
        return path
    except OSError:
        return None
