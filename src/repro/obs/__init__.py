"""Observability: metrics and tracing for the TIP engine.

The paper's central quantitative claim — in-engine temporal routines
run in time linear in the number of periods (Sections 3–4, experiments
E1/E2) — is only checkable if the engine can report the work it
performs.  This package provides that report surface:

* **counters** — call counts, error counts, periods-processed volumes;
* **histograms** — per-routine latency distributions;
* **spans** — ring-buffered trace events for coarse operations.

Everything hangs off one process-wide switch (:func:`enable` /
:func:`disable`, default *off*).  Hot paths guard on
``registry.state.enabled`` — a single attribute load — and instruments
are created lazily, so a disabled engine does no metric work and
allocates nothing (asserted by ``tests/test_obs.py``).

Call sites either wrap a callable once (:func:`instrumented`, used by
the blade installer at ``create_function`` time) or record explicit
counters under the guard (the interval-algebra sweeps).  Snapshots are
plain data, safe to frame over the server protocol as a ``METRICS``
response and to render via :mod:`repro.obs.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import monotonic, perf_counter
from typing import Dict

from repro.obs.export import (
    assemble_trace,
    render_json,
    render_profile,
    render_prometheus,
    render_spans,
    render_text,
    span_records,
)
from repro.obs.instruments import Counter, Histogram
from repro.obs.registry import (
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    is_enabled,
    set_registry,
    state,
)
from repro.obs.trace import (
    TraceBuffer,
    TraceEvent,
    get_trace_buffer,
    set_trace_buffer,
    span,
)
from repro.obs import flight, profile

__all__ = [
    "Counter", "Histogram", "MetricsRegistry", "TraceBuffer", "TraceEvent",
    "enable", "disable", "is_enabled", "state",
    "get_registry", "set_registry", "get_trace_buffer", "set_trace_buffer",
    "counter", "histogram", "span", "snapshot", "instrumented", "call", "capture",
    "render_text", "render_json", "render_prometheus", "render_profile",
    "render_spans", "span_records", "assemble_trace",
    "profile", "flight",
]

#: Monotonic mark at import time — the uptime origin every snapshot
#: reports against.
_PROCESS_START = monotonic()


def counter(name: str) -> Counter:
    """The named counter in the active registry (created on first use)."""
    return get_registry().counter(name)


def histogram(name: str) -> Histogram:
    """The named histogram in the active registry (created on first use)."""
    return get_registry().histogram(name)


def snapshot(trace_tail: int = 0) -> Dict:
    """The active registry as plain data, plus the switch position.

    *trace_tail* > 0 appends the most recent trace events.  Every
    snapshot carries a monotonic timestamp and the process uptime, the
    session open/close ledger derived from the server counters, and —
    when a fault plan is armed — the plan's per-rule hit/fired ledger,
    so a METRICS frame is self-describing about when it was taken and
    what chaos was active.
    """
    now = monotonic()
    data = get_registry().snapshot()
    data["enabled"] = state.enabled
    data["ts_monotonic"] = now
    data["uptime_seconds"] = now - _PROCESS_START
    counters = data.get("counters", {})
    opened = counters.get("server.sessions.opened", 0)
    closed = counters.get("server.sessions.closed", 0)
    data["sessions"] = {
        "opened": opened, "closed": closed, "active": opened - closed,
    }
    # Imported lazily: repro.codec instruments itself through
    # repro.faults and this package, so module-level imports would be
    # circular.  The marshalling caches keep their own always-on plain
    # counters; surface them as a structured section *and* merged into
    # the counter table so every existing consumer (.metrics, the
    # METRICS frame, Prometheus, QueryProfile deltas) sees them.
    from repro.codec import cache as _marshal_cache
    from repro.tsql import compiled as _stmt_cache

    data["caches"] = _marshal_cache.stats()
    data["caches"]["statement"] = _stmt_cache.stats()
    if _marshal_cache.state.enabled and state.enabled:
        # Zero-valued entries are skipped so an idle (or freshly reset)
        # snapshot still renders as "(no metrics recorded)".
        for cache_counter, cache_value in _marshal_cache.stats_counters().items():
            if cache_value:
                counters.setdefault(cache_counter, cache_value)
    if _stmt_cache.state.enabled and state.enabled:
        for cache_counter, cache_value in _stmt_cache.stats_counters().items():
            if cache_value:
                counters.setdefault(cache_counter, cache_value)
    data["flight"] = {
        "enabled": flight.state.enabled,
        "events": len(flight.get_recorder()),
        "capacity": flight.get_recorder().capacity,
    }
    from repro.faults import state as _fault_state

    plan = _fault_state.plan
    if plan is None:
        data["faults"] = {"armed": False}
    else:
        data["faults"] = {
            "armed": True,
            "seed": plan.seed,
            "rules": [rule.as_dict() for rule in plan.rules],
        }
    if trace_tail:
        data["trace"] = [
            event.as_dict() for event in get_trace_buffer().events(last=trace_tail)
        ]
    return data


def instrumented(name: str, fn):
    """Wrap *fn* with ``<name>.calls`` / ``.seconds`` / ``.errors``.

    The wrapper is a straight pass-through while observability is
    disabled; the instruments only come into existence on the first
    call with it enabled.
    """
    calls_name = name + ".calls"
    errors_name = name + ".errors"
    seconds_name = name + ".seconds"

    def wrapper(*args, **kwargs):
        if not state.enabled:
            return fn(*args, **kwargs)
        registry = get_registry()
        started = perf_counter()
        try:
            return fn(*args, **kwargs)
        except Exception:
            registry.counter(errors_name).inc()
            raise
        finally:
            registry.counter(calls_name).inc()
            registry.histogram(seconds_name).observe(perf_counter() - started)

    wrapper.__name__ = getattr(fn, "__name__", name)
    wrapper.__doc__ = getattr(fn, "__doc__", None)
    wrapper.__wrapped__ = fn
    return wrapper


def call(name: str, fn, *args):
    """One-shot :func:`instrumented`: run ``fn(*args)`` under *name*.

    For call sites where the callable is looked up dynamically (the
    blade's implicit cast graph) and wrapping once is not possible.
    """
    if not state.enabled:
        return fn(*args)
    registry = get_registry()
    started = perf_counter()
    try:
        return fn(*args)
    except Exception:
        registry.counter(name + ".errors").inc()
        raise
    finally:
        registry.counter(name + ".calls").inc()
        registry.histogram(name + ".seconds").observe(perf_counter() - started)


@contextmanager
def capture(enabled: bool = True):
    """Temporarily install a fresh registry + trace buffer; yield the registry.

    The workhorse of the test suite: isolates metric assertions from
    whatever the process accumulated before, and restores the previous
    registry, buffer, switch position, and profiler state (switch,
    threshold, rings) on exit.
    """
    from collections import deque

    previous_enabled = state.enabled
    registry = MetricsRegistry("capture")
    previous_registry = set_registry(registry)
    previous_buffer = set_trace_buffer(TraceBuffer())
    pstate = profile.state
    previous_profiles = (
        pstate.recent, pstate.slow, pstate.slow_threshold, pstate.enabled,
    )
    pstate.recent = deque(maxlen=profile.RECENT_CAPACITY)
    pstate.slow = profile.SlowQueryLog()
    # Flight isolation mirrors the registry: a fresh ring, and the
    # recorder switch parked off so only tests that opt in see events.
    fstate = flight.state
    previous_flight = (fstate.enabled, fstate.crash_dump_path,
                       flight.set_recorder(flight.FlightRecorder()))
    fstate.enabled = False
    fstate.crash_dump_path = None
    state.enabled = enabled
    try:
        yield registry
    finally:
        state.enabled = previous_enabled
        set_registry(previous_registry)
        set_trace_buffer(previous_buffer)
        (pstate.recent, pstate.slow, pstate.slow_threshold,
         pstate.enabled) = previous_profiles
        fstate.enabled, fstate.crash_dump_path = previous_flight[:2]
        flight.set_recorder(previous_flight[2])
