"""Per-statement query profiling with wire-level trace propagation.

PR 1's observability reports *process-wide* aggregates; this module
answers the per-statement question the paper's E2 comparison actually
poses: where did *this* query spend its time, and why did the blade
path win?  Three pieces:

* :class:`QueryProfile` — one statement's cost record: wall time, the
  per-routine call/latency breakdown (scoped to the statement by
  diffing the active metrics registry around it), periods processed,
  index probes, row counts, and retry counts;
* a **trace context** — a ``trace_id``/``span_id`` pair threaded
  through the wire protocol so the client-side span and the
  server-side span of one statement join into a single trace;
* a **slow-query log** — a bounded ring of the profiles whose wall
  time met a configurable threshold, optionally mirrored to a JSONL
  sink for offline analysis.

The profiler follows the same inert-when-off discipline as the rest of
:mod:`repro.obs`: hot paths read ``state.enabled`` (and the
``state.forced`` depth used for one-shot profiling) — two attribute
loads on a module singleton, **zero additional Python-level calls** —
and skip everything when both are falsy.  The settrace test in
``tests/test_profile.py`` proves that a disabled profiler never enters
this module during ``execute()``.

Registry-delta scoping is exact whenever statements on a registry do
not interleave — true for local single-threaded use and for the server,
which serializes statements under its engine lock.  Concurrent local
writers would smear each other's deltas; the profile is still a valid
upper bound and is documented as such.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter, time
from typing import Dict, List, Optional

from repro.obs.registry import get_registry
from repro.obs.registry import state as _obs_state
from repro.obs.trace import TraceEvent, get_trace_buffer

__all__ = [
    "QueryProfile", "StatementRecorder", "SlowQueryLog", "ProfilerState",
    "state", "enable", "disable", "is_enabled", "configure", "forced",
    "activate_context", "current_context", "new_trace_id", "new_span_id",
    "slow_log", "recent_profiles", "clear",
]

#: Ring capacities: recent profiles kept for the PROFILE frame, and
#: slow-query entries kept before old offenders fall off.
RECENT_CAPACITY = 64
SLOW_CAPACITY = 128

#: Counter prefixes that constitute the per-routine breakdown.
_ROUTINE_PREFIXES = ("blade.routine.", "blade.aggregate.", "blade.cast.", "layered.op.")

#: Counters surfaced as first-class QueryProfile fields.
_PERIOD_COUNTERS = ("element.periods_processed", "tempagg.sweep.periods_processed")
_PROBE_COUNTER = "index.probes"


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return os.urandom(8).hex()


@dataclass
class QueryProfile:
    """Everything one statement cost, as plain data."""

    sql: str
    engine: str = "blade"          # blade | layered | client
    side: str = "local"            # local | client | server
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: Optional[str] = None
    started_at: float = 0.0        # wall clock (time.time) at start
    wall_seconds: float = 0.0      # execute() duration
    fetch_seconds: float = 0.0     # accumulated fetch time (lazy rows)
    rows: int = 0                  # rows fetched so far
    rowcount: int = -1             # DB-API rowcount (DML row traffic)
    retries: int = 0               # transport retries (remote client)
    periods_processed: int = 0
    index_probes: int = 0
    routines: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    statement_now: Optional[str] = None
    #: This statement's compiled-statement-cache fate: "hit", "miss",
    #: or None when the cache saw no traffic (cache off, or the profile
    #: predates this field).  Lets a slow-log entry say whether the
    #: offender at least skipped translation.
    stmt_cache: Optional[str] = None
    ok: bool = True
    error: Optional[str] = None

    def as_dict(self) -> Dict:
        """A JSON-framable copy (wire form of the PROFILE payload)."""
        data = {
            "sql": self.sql,
            "engine": self.engine,
            "side": self.side,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "fetch_seconds": self.fetch_seconds,
            "rows": self.rows,
            "rowcount": self.rowcount,
            "retries": self.retries,
            "periods_processed": self.periods_processed,
            "index_probes": self.index_probes,
            "routines": self.routines,
            "counters": self.counters,
            "ok": self.ok,
        }
        if self.parent_span_id is not None:
            data["parent_span_id"] = self.parent_span_id
        if self.statement_now is not None:
            data["statement_now"] = self.statement_now
        if self.stmt_cache is not None:
            data["stmt_cache"] = self.stmt_cache
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "QueryProfile":
        """Rebuild a profile from its wire form (unknown keys ignored)."""
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in data.items() if key in known})


class SlowQueryLog:
    """A bounded ring of offending profiles, with an optional JSONL sink."""

    def __init__(self, capacity: int = SLOW_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self.sink_path: Optional[str] = None

    def record(self, profile: QueryProfile) -> None:
        with self._lock:
            self._entries.append(profile)
            sink = self.sink_path
        if sink is not None:
            try:
                with open(sink, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(profile.as_dict(), sort_keys=True) + "\n")
            except OSError:
                pass  # a broken sink must never fail the statement

    def entries(self, last: Optional[int] = None) -> List[QueryProfile]:
        with self._lock:
            items = list(self._entries)
        return items if last is None else items[-last:]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ProfilerState:
    """The profiler switch plus its configuration, on one singleton.

    ``enabled`` turns automatic per-statement profiling on;
    ``forced`` is a depth counter for one-shot profiling of a single
    statement (the server's on-request path and the EXPLAIN harness)
    without flipping the process-wide switch.  Hot paths check both
    with plain attribute loads.
    """

    __slots__ = ("enabled", "forced", "slow_threshold", "slow", "recent")

    def __init__(self) -> None:
        self.enabled = False
        self.forced = 0
        #: Seconds; None disables slow-query capture.  0.0 captures
        #: every profiled statement.
        self.slow_threshold: Optional[float] = None
        self.slow = SlowQueryLog()
        self.recent: deque = deque(maxlen=RECENT_CAPACITY)


state = ProfilerState()


def enable(
    slow_threshold: Optional[float] = None,
    sink: Optional[str] = None,
) -> None:
    """Turn per-statement profiling on (and metrics with it).

    The routine breakdown is a registry delta, so profiling without
    metrics would be hollow: enabling the profiler enables
    :mod:`repro.obs` collection too.  *slow_threshold* (seconds) arms
    the slow-query log — 0.0 captures everything; *sink* mirrors slow
    entries to a JSONL file.
    """
    _obs_state.enabled = True
    if slow_threshold is not None:
        state.slow_threshold = slow_threshold
    if sink is not None:
        state.slow.sink_path = sink
    state.enabled = True


def disable() -> None:
    """Turn automatic profiling off (metrics collection is untouched)."""
    state.enabled = False


def is_enabled() -> bool:
    return state.enabled


def configure(
    *,
    slow_threshold: Optional[float] = None,
    sink: Optional[str] = None,
) -> None:
    """Adjust slow-query capture without touching the on/off switch."""
    state.slow_threshold = slow_threshold
    state.slow.sink_path = sink


def clear() -> None:
    """Drop captured profiles (recent ring and slow log)."""
    state.recent.clear()
    state.slow.clear()


@contextmanager
def forced():
    """Profile statements inside the block even if the switch is off.

    A depth counter, so nesting is safe.  Used by the server for
    client-requested one-shot profiles and by the EXPLAIN TEMPORAL
    harness; both serialize statement execution, so the brief global
    bump cannot misattribute another thread's statement to this one.
    """
    state.forced += 1
    try:
        yield
    finally:
        state.forced -= 1


class _TraceContext(threading.local):
    """The propagated trace identity of the statement being handled."""

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    side: str = "local"


_context = _TraceContext()


def current_context() -> _TraceContext:
    return _context


@contextmanager
def activate_context(trace_id: Optional[str], span_id: Optional[str], side: str = "local"):
    """Adopt an incoming trace identity for statements in this thread.

    The server wraps statement execution in the client's
    ``trace_id``/``span_id`` so the recorder's span becomes a child of
    the client-side span — one trace across the wire.
    """
    previous = (_context.trace_id, _context.span_id, _context.side)
    _context.trace_id, _context.span_id, _context.side = trace_id, span_id, side
    try:
        yield
    finally:
        _context.trace_id, _context.span_id, _context.side = previous


def _registry_snapshot() -> Dict:
    """The active registry snapshot plus the marshalling-cache counters.

    The codec caches are process-wide and keep their own monotonic
    stats; merging them into both the before- and after-snapshots makes
    cache traffic (``codec.cache.decode.hits`` and friends) fall out of
    the same delta arithmetic as every registry counter, so a
    :class:`QueryProfile` reports exactly this statement's hit/miss
    behaviour.
    """
    snapshot = get_registry().snapshot()
    # Imported lazily: repro.codec and repro.tsql reach this package
    # through repro.faults, so module-level imports would be circular.
    from repro.codec import cache as _marshal_cache
    from repro.tsql import compiled as _stmt_cache

    if _marshal_cache.state.enabled:
        snapshot["counters"].update(_marshal_cache.stats_counters())
    if _stmt_cache.state.enabled:
        snapshot["counters"].update(_stmt_cache.stats_counters())
    return snapshot


def _counter_deltas(before: Dict, after: Dict) -> Dict[str, int]:
    deltas: Dict[str, int] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            deltas[name] = change
    return deltas


def _routine_breakdown(
    before: Dict, after: Dict, counter_deltas: Dict[str, int]
) -> Dict[str, Dict[str, float]]:
    """Per-routine ``{calls, seconds}`` from the histogram/counter diff."""
    breakdown: Dict[str, Dict[str, float]] = {}
    for name, snap in after.items():
        if not name.startswith(_ROUTINE_PREFIXES) or not name.endswith(".seconds"):
            continue
        prior = before.get(name, {})
        count = snap.get("count", 0) - prior.get("count", 0)
        seconds = snap.get("sum", 0.0) - prior.get("sum", 0.0)
        if count:
            breakdown[name[: -len(".seconds")]] = {
                "calls": count, "seconds": seconds,
            }
    # Aggregate step counters have no latency histogram of their own;
    # surface them alongside so the breakdown shows volume too.
    for name, change in counter_deltas.items():
        if name.startswith(_ROUTINE_PREFIXES) and name.endswith(".steps"):
            entry = breakdown.setdefault(name[: -len(".steps")], {"calls": 0, "seconds": 0.0})
            entry["steps"] = change
    return breakdown


class StatementRecorder:
    """Collects one :class:`QueryProfile` around a statement.

    Usage::

        recorder = StatementRecorder(sql)
        recorder.start()
        ...  # run the statement
        profile = recorder.finish(rowcount=..., ok=True)

    ``start``/``finish`` snapshot the active metrics registry, so the
    routine breakdown and the periods/probes counters cover exactly the
    work between the two calls.
    """

    __slots__ = ("profile", "_before", "_t0")

    def __init__(self, sql: str, *, engine: str = "blade", side: Optional[str] = None) -> None:
        ctx = _context
        trace_id = ctx.trace_id if ctx.trace_id is not None else new_trace_id()
        self.profile = QueryProfile(
            sql=sql,
            engine=engine,
            side=side if side is not None else ctx.side,
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_span_id=ctx.span_id,
        )
        self._before: Dict = {}
        self._t0 = 0.0

    def start(self) -> "StatementRecorder":
        self.profile.started_at = time()
        self._before = _registry_snapshot()
        self._t0 = perf_counter()
        return self

    def finish(
        self,
        *,
        rowcount: int = -1,
        ok: bool = True,
        error: Optional[str] = None,
        statement_now: Optional[str] = None,
    ) -> QueryProfile:
        elapsed = perf_counter() - self._t0
        after = _registry_snapshot()
        profile = self.profile
        profile.wall_seconds = elapsed
        profile.rowcount = rowcount
        profile.ok = ok
        profile.error = error
        profile.statement_now = statement_now
        counter_deltas = _counter_deltas(
            self._before.get("counters", {}), after.get("counters", {})
        )
        profile.counters = counter_deltas
        # The statement cache's fate for *this* statement falls out of
        # the same delta arithmetic: a hot statement bumps tsql.cache.hit
        # by one, a cold one tsql.cache.miss.  No traffic (cache off,
        # uncacheable text) leaves the field None.
        if counter_deltas.get("tsql.cache.hit"):
            profile.stmt_cache = "hit"
        elif counter_deltas.get("tsql.cache.miss"):
            profile.stmt_cache = "miss"
        profile.periods_processed = sum(
            counter_deltas.get(name, 0) for name in _PERIOD_COUNTERS
        )
        profile.index_probes = counter_deltas.get(_PROBE_COUNTER, 0)
        profile.routines = _routine_breakdown(
            self._before.get("histograms", {}), after.get("histograms", {}),
            counter_deltas,
        )
        self._publish(profile)
        return profile

    def _publish(self, profile: QueryProfile) -> None:
        state.recent.append(profile)
        threshold = state.slow_threshold
        if threshold is not None and profile.wall_seconds >= threshold:
            state.slow.record(profile)
        # The statement's span joins the shared trace buffer, so
        # client- and server-side spans of one trace sit side by side.
        get_trace_buffer().record(TraceEvent(
            f"query.{profile.side}",
            profile.wall_seconds,
            ok=profile.ok,
            meta={
                "trace_id": profile.trace_id,
                "span_id": profile.span_id,
                **({"parent_span_id": profile.parent_span_id}
                   if profile.parent_span_id else {}),
                "side": profile.side,
                "engine": profile.engine,
            },
        ))


def slow_log(last: Optional[int] = None) -> List[QueryProfile]:
    """The captured slow-query profiles, oldest first."""
    return state.slow.entries(last=last)


def recent_profiles(last: Optional[int] = None) -> List[QueryProfile]:
    """The most recent profiled statements, oldest first."""
    items = list(state.recent)
    return items if last is None else items[-last:]
