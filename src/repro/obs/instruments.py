"""The two instrument kinds: counters and latency histograms.

Instruments are plain objects with their own locks, so concurrent
updates from server session threads and SQL callbacks never lose
increments (Python's ``+=`` on an attribute is *not* atomic — it is a
read/modify/write that can interleave under the GIL).  Reads take the
same lock, so a snapshot observes a consistent value.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = ["Counter", "Histogram", "DEFAULT_BOUNDS"]

#: Default histogram bucket upper bounds, in seconds — log-spaced from
#: a microsecond to ten seconds, sized for routine-call latencies.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the count."""
        with self._lock:
            self._value += amount

    #: ``add`` reads better at call sites that record a measured volume
    #: (periods processed, rows returned) rather than an event count.
    add = inc

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket distribution summary (count/sum/min/max + buckets).

    Observations are floats — by convention seconds, since every
    engine call site records latencies — but nothing enforces a unit.
    """

    __slots__ = ("name", "bounds", "_lock", "_count", "_sum", "_min", "_max", "_buckets")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # One slot per bound plus the +Inf overflow slot.
        self._buckets = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._buckets[index] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def _quantile_locked(self, q: float) -> Optional[float]:
        """The *q*-quantile estimated from the bucket state (lock held).

        Walks the cumulative bucket counts to the first bucket whose
        cumulative share reaches *q* and reports that bucket's upper
        bound, clamped to the observed max (so a histogram whose every
        observation landed in one wide bucket never reports a value
        larger than anything it saw).  The overflow bucket reports the
        observed max directly.  None while empty.
        """
        if not self._count:
            return None
        rank = q * self._count
        cumulative = 0
        for position, slot in enumerate(self._buckets):
            cumulative += slot
            if cumulative >= rank and slot:
                if position >= len(self.bounds):  # the +Inf overflow slot
                    return self._max
                bound = self.bounds[position]
                return min(bound, self._max) if self._max is not None else bound
        return self._max

    def snapshot(self) -> Dict:
        """A plain-data summary suitable for JSON framing.

        Includes p50/p95/p99 estimates derived from the bucket state —
        the summary quantiles METRICS frames, ``.metrics`` tables, and
        the Prometheus quantile gauges all surface.
        """
        with self._lock:
            buckets = {}
            for bound, slot in zip(self.bounds, self._buckets):
                if slot:
                    buckets[f"le_{bound:g}"] = slot
            if self._buckets[-1]:
                buckets["le_inf"] = self._buckets[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": buckets,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count})"
