"""Render a metrics snapshot as a fixed-width table, JSON, or Prometheus text.

Consumed by the shell's ``.metrics`` command, the ``python -m repro
metrics`` subcommand, and anything that receives a ``METRICS`` frame
from the server and wants it human-readable.  The Prometheus text
exposition (:func:`render_prometheus`) turns the same snapshot into
the ``text/plain; version=0.0.4`` format scrapers expect, so a TIP
process can be wired into an existing monitoring stack without a
bespoke exporter.  :func:`render_profile` renders one
:class:`~repro.obs.profile.QueryProfile` (as plain data) for the
shell's ``.profile`` command and the PROFILE wire frame.

The span exporter (:func:`span_records` / :func:`render_spans` /
:func:`assemble_trace`) turns buffered trace events into JSONL span
lines carrying ``trace_id`` / ``span_id`` / ``parent_span_id``, and
reassembles the client- and server-side spans of one trace into a
parent-first timeline — the cross-process view the flight recorder's
per-process ring cannot give by itself.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence

__all__ = [
    "render_text", "render_json", "render_prometheus", "render_profile",
    "span_records", "render_spans", "assemble_trace",
]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max([len(header)] + [len(row[index]) for row in rows])
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return lines


def _seconds(value) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def render_text(snapshot: Dict) -> str:
    """A snapshot (``{"counters": ..., "histograms": ...}``) as text."""
    sections: List[str] = []
    if "uptime_seconds" in snapshot:
        header = [f"uptime: {_seconds(snapshot['uptime_seconds'])}"]
        if "ts_monotonic" in snapshot:
            header.append(f"snapshot at t={snapshot['ts_monotonic']:.3f} (monotonic)")
        sections.append("\n".join(header))
    sessions = snapshot.get("sessions")
    if sessions:
        sections.append(
            f"sessions: {sessions.get('opened', 0)} opened, "
            f"{sessions.get('closed', 0)} closed, "
            f"{sessions.get('active', 0)} active"
        )
    faults = snapshot.get("faults")
    if faults and faults.get("armed"):
        lines = [f"faults: armed (seed={faults.get('seed')})"]
        for rule in faults.get("rules", []):
            lines.append(
                f"  {rule.get('point')}:{rule.get('mode')} "
                f"hits={rule.get('hits', 0)} fired={rule.get('fired', 0)}"
            )
        sections.append("\n".join(lines))
    caches = snapshot.get("caches")
    if caches:
        if caches.get("enabled"):
            lines = ["marshalling caches:"]
            for which in ("decode", "parse"):
                entry = caches.get(which)
                if not entry:
                    continue
                lines.append(
                    f"  {which}: {entry.get('entries', 0)}/{entry.get('capacity', 0)} entries, "
                    f"hits={entry.get('hits', 0)} misses={entry.get('misses', 0)} "
                    f"evictions={entry.get('evictions', 0)} "
                    f"({entry.get('hit_ratio', 0.0) * 100:.1f}% hit)"
                )
            sections.append("\n".join(lines))
        else:
            sections.append("marshalling caches: disabled")
        statement = caches.get("statement")
        if statement:
            if statement.get("enabled"):
                sections.append(
                    f"statement cache: {statement.get('entries', 0)}/"
                    f"{statement.get('capacity', 0)} plans, "
                    f"hits={statement.get('hits', 0)} "
                    f"misses={statement.get('misses', 0)} "
                    f"evictions={statement.get('evictions', 0)} "
                    f"invalidations={statement.get('invalidations', 0)} "
                    f"({statement.get('hit_ratio', 0.0) * 100:.1f}% hit, "
                    f"generation {statement.get('generation', 0)})"
                )
            else:
                sections.append("statement cache: disabled")
    header_count = len(sections)
    counters = snapshot.get("counters", {})
    if counters:
        rows = [(name, str(counters[name])) for name in sorted(counters)]
        sections.append("\n".join(["counters:"] + _table(("name", "value"), rows)))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            rows.append((
                name, str(h.get("count", 0)),
                _seconds(h.get("mean", 0.0)),
                _seconds(h.get("p50")), _seconds(h.get("p95")), _seconds(h.get("p99")),
                _seconds(h.get("min")), _seconds(h.get("max")),
                _seconds(h.get("sum", 0.0)),
            ))
        sections.append("\n".join(
            ["histograms:"] + _table(
                ("name", "count", "mean", "p50", "p95", "p99", "min", "max", "total"),
                rows,
            )
        ))
    trace = snapshot.get("trace", [])
    if trace:
        rows = [
            (event.get("name", "?"), _seconds(event.get("seconds")),
             "ok" if event.get("ok", True) else "ERROR")
            for event in trace
        ]
        sections.append("\n".join(["recent spans:"] + _table(("span", "took", "status"), rows)))
    if len(sections) == header_count:  # uptime/session headers only
        sections.append("(no metrics recorded)")
    return "\n\n".join(sections)


def render_json(snapshot: Dict) -> str:
    """A snapshot as pretty-printed, key-sorted JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True)


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: Histogram bucket keys arrive as ``le_<bound>`` / ``le_inf``.
_PROM_BUCKET_PREFIX = "le_"


def _prom_name(name: str, prefix: str = "tip_") -> str:
    return prefix + _PROM_NAME_RE.sub("_", name)


def render_prometheus(snapshot: Dict) -> str:
    """A snapshot in the Prometheus text exposition format (0.0.4).

    Counters become ``# TYPE ... counter`` samples; histograms become
    the conventional ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triples with cumulative buckets.  Uptime and the session ledger
    become gauges when present.
    """
    lines: List[str] = []
    if "uptime_seconds" in snapshot:
        lines += ["# TYPE tip_uptime_seconds gauge",
                  f"tip_uptime_seconds {snapshot['uptime_seconds']:.6f}"]
    sessions = snapshot.get("sessions")
    if sessions:
        lines.append("# TYPE tip_sessions gauge")
        for which in ("opened", "closed", "active"):
            lines.append(f'tip_sessions{{state="{which}"}} {sessions.get(which, 0)}')
    caches = snapshot.get("caches")
    if caches and caches.get("enabled"):
        # Occupancy is a gauge; the hit/miss/eviction totals already
        # ride in the counter table as tip_codec_cache_* counters.
        lines.append("# TYPE tip_marshal_cache_entries gauge")
        for which in ("decode", "parse"):
            entry = caches.get(which)
            if entry:
                lines.append(
                    f'tip_marshal_cache_entries{{cache="{which}"}} '
                    f'{entry.get("entries", 0)}'
                )
    counters = dict(snapshot.get("counters", {}))
    if caches:
        statement = caches.get("statement")
        if statement and statement.get("enabled"):
            lines += [
                "# TYPE tip_statement_cache_entries gauge",
                f"tip_statement_cache_entries {statement.get('entries', 0)}",
            ]
            # The hit/miss/evict/invalidate totals normally ride in the
            # counter table (merged from stats_counters()); a snapshot
            # taken before any traffic skips the zero-valued ones, so
            # fill the family in explicitly — scrapers want every series
            # of a family present from the first scrape.
            for short, stat in (("hit", "hits"), ("miss", "misses"),
                                ("evict", "evictions"),
                                ("invalidate", "invalidations")):
                counters.setdefault(f"tsql.cache.{short}", statement.get(stat, 0))
    flight = snapshot.get("flight")
    if flight:
        lines += [
            "# TYPE tip_flight_events gauge",
            f"tip_flight_events {flight.get('events', 0)}",
            "# TYPE tip_flight_enabled gauge",
            f"tip_flight_enabled {1 if flight.get('enabled') else 0}",
        ]
    for name in sorted(counters):
        metric = _prom_name(name) + "_total"
        lines += [f"# TYPE {metric} counter",
                  f"{metric} {counters[name]}"]
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = hist.get("buckets", {})

        def bound_key(key: str) -> float:
            raw = key[len(_PROM_BUCKET_PREFIX):]
            return float("inf") if raw == "inf" else float(raw)

        has_inf = False
        for key in sorted(buckets, key=bound_key):
            bound = key[len(_PROM_BUCKET_PREFIX):]
            label = "+Inf" if bound == "inf" else bound
            has_inf = has_inf or label == "+Inf"
            cumulative += buckets[key]
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        count = hist.get("count", 0)
        if not has_inf:  # the format requires a closing +Inf bucket
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines += [f"{metric}_sum {hist.get('sum', 0.0):.9f}",
                  f"{metric}_count {count}"]
        # Bucket-derived quantile estimates as a companion gauge (a
        # native histogram carries no quantile series; dashboards that
        # cannot run histogram_quantile() read these directly).
        quantiles = [(q, hist.get(f"p{int(q * 100)}")) for q in (0.5, 0.95, 0.99)]
        if any(value is not None for _q, value in quantiles):
            lines.append(f"# TYPE {metric}_quantile gauge")
            for q, value in quantiles:
                if value is not None:
                    lines.append(f'{metric}_quantile{{quantile="{q:g}"}} {value:.9f}')
    return "\n".join(lines) + ("\n" if lines else "")


def render_profile(profile: Dict) -> str:
    """One query profile (``QueryProfile.as_dict()`` form) as text."""
    lines = [
        f"statement: {profile.get('sql', '?')}",
        f"  engine={profile.get('engine', '?')} side={profile.get('side', '?')} "
        f"trace={profile.get('trace_id', '')[:16]} span={profile.get('span_id', '')}",
        f"  wall {_seconds(profile.get('wall_seconds', 0.0))}"
        + (f"  fetch {_seconds(profile['fetch_seconds'])}"
           if profile.get("fetch_seconds") else "")
        + f"  rows={profile.get('rows', 0)} rowcount={profile.get('rowcount', -1)}"
        + (f" retries={profile['retries']}" if profile.get("retries") else ""),
        f"  periods_processed={profile.get('periods_processed', 0)} "
        f"index_probes={profile.get('index_probes', 0)} "
        f"ok={profile.get('ok', True)}"
        + (f" stmt_cache={profile['stmt_cache']}" if profile.get("stmt_cache") else ""),
    ]
    if profile.get("error"):
        lines.append(f"  error: {profile['error']}")
    routines = profile.get("routines", {})
    if routines:
        rows = []
        for name in sorted(routines, key=lambda n: -routines[n].get("seconds", 0.0)):
            entry = routines[name]
            rows.append((
                name, str(int(entry.get("calls", 0))),
                _seconds(entry.get("seconds", 0.0)),
                str(int(entry["steps"])) if "steps" in entry else "-",
            ))
        lines.append("  routines:")
        lines += ["    " + line
                  for line in _table(("routine", "calls", "seconds", "steps"), rows)]
    return "\n".join(lines)


# -- span export -------------------------------------------------------


def span_records(events: Sequence) -> List[Dict]:
    """Trace events flattened to span records (meta keys promoted).

    Accepts :class:`~repro.obs.trace.TraceEvent` objects or their
    ``as_dict()`` form; each record carries ``name`` / ``seconds`` /
    ``ok`` plus whatever trace identity the span's meta holds
    (``trace_id`` / ``span_id`` / ``parent_span_id`` / ``side`` ...),
    so one line is one span of one trace.
    """
    records: List[Dict] = []
    for event in events:
        entry = event.as_dict() if hasattr(event, "as_dict") else dict(event)
        meta = entry.pop("meta", {})
        records.append({**entry, **meta})
    return records


def render_spans(events: Sequence, *, trace_id: Optional[str] = None) -> str:
    """Spans as JSONL, one span per line, optionally one trace only.

    The JSONL form is what ``repro flight``-style tooling and offline
    timeline viewers consume: spans from different processes (client
    and server halves of one statement) concatenate into one file and
    regroup by ``trace_id``.
    """
    records = span_records(events)
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


def assemble_trace(events: Sequence, trace_id: str) -> List[Dict]:
    """One trace's spans as a parent-first timeline with depths.

    Spans reassemble across processes through their ids: a span whose
    ``parent_span_id`` names another span's ``span_id`` nests under it
    (the server-side half of a remote statement under its client-side
    half).  Roots and orphans (parent not captured) sit at depth 0, in
    buffer order; each record gains a ``depth`` key.
    """
    spans = [r for r in span_records(events) if r.get("trace_id") == trace_id]
    by_id = {r["span_id"]: r for r in spans if r.get("span_id")}
    children: Dict[str, List[Dict]] = {}
    roots: List[Dict] = []
    for record in spans:
        parent = record.get("parent_span_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    timeline: List[Dict] = []

    def walk(record: Dict, depth: int) -> None:
        timeline.append({**record, "depth": depth})
        for child in children.get(record.get("span_id") or "", []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return timeline
