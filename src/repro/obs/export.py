"""Render a metrics snapshot as a fixed-width table or JSON.

Consumed by the shell's ``.metrics`` command, the ``python -m repro
metrics`` subcommand, and anything that receives a ``METRICS`` frame
from the server and wants it human-readable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

__all__ = ["render_text", "render_json"]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max([len(header)] + [len(row[index]) for row in rows])
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return lines


def _seconds(value) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def render_text(snapshot: Dict) -> str:
    """A snapshot (``{"counters": ..., "histograms": ...}``) as text."""
    sections: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [(name, str(counters[name])) for name in sorted(counters)]
        sections.append("\n".join(["counters:"] + _table(("name", "value"), rows)))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            rows.append((
                name, str(h.get("count", 0)),
                _seconds(h.get("mean", 0.0)),
                _seconds(h.get("min")), _seconds(h.get("max")),
                _seconds(h.get("sum", 0.0)),
            ))
        sections.append("\n".join(
            ["histograms:"] + _table(("name", "count", "mean", "min", "max", "total"), rows)
        ))
    trace = snapshot.get("trace", [])
    if trace:
        rows = [
            (event.get("name", "?"), _seconds(event.get("seconds")),
             "ok" if event.get("ok", True) else "ERROR")
            for event in trace
        ]
        sections.append("\n".join(["recent spans:"] + _table(("span", "took", "status"), rows)))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def render_json(snapshot: Dict) -> str:
    """A snapshot as pretty-printed, key-sorted JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
