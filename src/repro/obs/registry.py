"""The instrument registry and the process-wide observability switch.

Hot paths read ``state.enabled`` — a single attribute load on a
module-level singleton — and skip *all* metric work when it is False.
Instruments are created lazily on first use, so a disabled engine never
even allocates them: an untouched registry after a workload is the
proof that the disabled path is inert (see
``tests/test_obs.py::TestDisabledInertness``).
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.obs.instruments import Counter, Histogram

__all__ = [
    "ObsState", "state", "MetricsRegistry",
    "get_registry", "set_registry", "enable", "disable", "is_enabled",
]


class ObsState:
    """The global on/off switch, read on hot paths without a lock.

    A stale read costs at most one extra (or one missing) sample during
    the toggle itself; correctness of the counters is guaranteed by the
    per-instrument locks.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


state = ObsState()


def enable() -> None:
    """Turn instrumentation on, process-wide."""
    state.enabled = True


def disable() -> None:
    """Turn instrumentation off, process-wide."""
    state.enabled = False


def is_enabled() -> bool:
    return state.enabled


class MetricsRegistry:
    """A named bag of lazily created instruments."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (lazy creation) ----------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    # -- inspection ---------------------------------------------------

    def __len__(self) -> int:
        """Number of instruments ever created (0 == never touched)."""
        with self._lock:
            return len(self._counters) + len(self._histograms)

    def counter_value(self, name: str) -> int:
        """The current value of a counter, 0 when it was never created."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict:
        """All instruments as plain data, consistent per instrument."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def reset(self) -> None:
        """Drop every instrument (counts restart from zero)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry instrumentation currently records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
