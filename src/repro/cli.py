"""An interactive TIP shell: query and browse temporal data.

The terminal counterpart of the demo setup — a ``dbaccess``-style REPL
over a TIP-enabled database with the Browser built in::

    python -m repro [database]

Plain input is executed as SQL (TSQL2 statement modifiers included).
Dot-commands drive the session:

======================  ==================================================
``.help``               this text
``.demo [n]``           load the synthetic medical database (default 50)
``.tables``             list tables (temporal ones are marked)
``.schema <table>``     show a table's DDL
``.now [t | clear]``    show/override/clear the interpretation of NOW
``.blade``              describe the installed TIP DataBlade
``.metrics [...]``      engine metrics: ``on``/``off`` toggles
                        collection, ``json`` dumps JSON, ``prom``
                        emits Prometheus text exposition, ``reset``
                        clears, no argument prints the table
``.explain <sql>``      run the statement under both the blade and a
                        layered TimeDB-style mirror and print the
                        side-by-side cost report (``EXPLAIN TEMPORAL
                        <sql>`` as plain input does the same)
``.faults [...]``       fault injection: ``<spec> [seed=N]`` arms a
                        chaos plan, ``off`` disarms, ``points`` lists
                        the injection points, no argument shows the
                        armed plan
``.flight [...]``       flight recorder: ``on``/``off`` toggles the
                        ring, ``clear`` empties it, ``json`` dumps the
                        events as JSONL, ``last N`` shows the newest N,
                        ``kind <k>`` filters by kind prefix, no
                        argument prints a summary table
``.linq <expr>``        evaluate a query-builder expression
                        (:mod:`repro.linq`) and run it; the namespace
                        binds ``t(name[, alias])`` for tables plus
                        ``lit``/``param``/``call``/``allen``/``now`` —
                        e.g. ``.linq t('Prescription',
                        'p').snapshot(at='1999-09-01')``.  Prints the
                        compiled tSQL, then the rows
``.browse <sql>``       load a query into the Browser and render it
``.window <start> <days>``  set the Browser window
``.slide <n>``          move the Browser window by n window-widths
``.zoom <factor>``      scale the Browser window
``.quit``               leave
======================  ==================================================

There are also non-interactive subcommands: one fetches a METRICS
frame from a running :class:`~repro.server.server.TipServer`, one
fetches its FLIGHT frame (the flight-recorder ring, as JSONL), one
runs a TIP server in the foreground (with an optional telemetry HTTP
endpoint), one inspects and validates chaos plans, one runs the
blade-vs-layered ``EXPLAIN TEMPORAL`` comparison on a one-shot
database::

    python -m repro metrics HOST:PORT [--json|--prom] [--reset]
    python -m repro flight HOST:PORT [--last N] [--session S]
                           [--trace T] [--kind K]
    python -m repro serve [--db PATH] [--host H] [--port P]
                          [--readers N] [--telemetry-port P]
                          [--flight-dump PATH] [--duration SECONDS]
    python -m repro faults [SPEC] [--seed N] [--json]
    python -m repro explain [--db PATH] [--demo N] [--json] SQL

Everything returns text, so the shell is scriptable and testable
(:class:`TipShell` is the engine; ``main()`` is the stdin loop).
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from typing import List, Optional, Sequence

import repro
from repro import codec, faults, obs
from repro.browser import TimeWindow, TipBrowser
from repro.core.chronon import Chronon
from repro.core.span import Span
from repro.errors import TipError
from repro.tsql import TsqlSession, compiled, strip_explain

__all__ = [
    "TipShell", "main", "metrics_main", "faults_main", "explain_main",
    "flight_main", "serve_main",
]

_MAX_ROWS = 40


def _format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table rendering for result sets."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[index]) for row in cells])
        for index, header in enumerate(headers)
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


class TipShell:
    """The shell engine: one line of input -> one block of output."""

    def __init__(self, database: str = ":memory:") -> None:
        self.connection = repro.connect(database)
        self.tsql = TsqlSession(self.connection)
        self.browser = TipBrowser(self.connection)
        self._browser_loaded = False
        self.done = False

    # -- dispatch -------------------------------------------------------

    def execute_line(self, line: str) -> str:
        """Process one input line; never raises (errors become text)."""
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("."):
                return self._command(line)
            return self._run_sql(line)
        except (TipError, sqlite3.Error, ValueError, ConnectionError) as exc:
            # ConnectionError covers InjectedFault: an armed .faults plan
            # must fail the statement, never the shell.
            return f"error: {exc}"

    def _command(self, line: str) -> str:
        parts = line.split(None, 1)
        name = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        handler = getattr(self, f"_cmd_{name[1:]}", None)
        if handler is None:
            return f"error: unknown command {name} (try .help)"
        return handler(argument)

    # -- SQL ----------------------------------------------------------------

    def _run_sql(self, sql: str) -> str:
        inner = strip_explain(sql)
        if inner is not None:
            return self._explain(inner)
        self.tsql.rescan()
        translated = self.tsql.translate(sql)
        cursor = self.connection.execute(translated)
        if cursor.description is None:
            self.connection.commit()
            affected = cursor.rowcount
            return f"ok ({affected} row{'s' if affected != 1 else ''} affected)" \
                if affected >= 0 else "ok"
        rows = cursor.fetchall()
        headers = [entry[0] for entry in cursor.description]
        shown = rows[:_MAX_ROWS]
        text = _format_table(headers, shown)
        if len(rows) > _MAX_ROWS:
            text += f"\n... ({len(rows) - _MAX_ROWS} more rows)"
        return text + f"\n({len(rows)} row{'s' if len(rows) != 1 else ''})"

    # -- commands ----------------------------------------------------------------

    def _cmd_help(self, _argument: str) -> str:
        return (__doc__ or "").strip()

    def _cmd_quit(self, _argument: str) -> str:
        self.done = True
        return "bye"

    _cmd_exit = _cmd_quit

    def _cmd_demo(self, argument: str) -> str:
        from repro.workload import MedicalConfig, generate_prescriptions, load_tip

        n = int(argument) if argument else 50
        rows = generate_prescriptions(MedicalConfig(n_prescriptions=n, seed=1999))
        load_tip(self.connection, rows, table="Prescription")
        self.tsql.rescan()
        return f"loaded {n} prescriptions into Prescription"

    def _cmd_tables(self, _argument: str) -> str:
        rows = self.connection.query(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        if not rows:
            return "(no tables)"
        self.tsql.rescan()
        temporal = self.tsql.temporal_tables
        lines = []
        for (name,) in rows:
            marker = f"  [temporal: {temporal[name.lower()]}]" if name.lower() in temporal else ""
            lines.append(name + marker)
        return "\n".join(lines)

    def _cmd_schema(self, argument: str) -> str:
        if not argument:
            return "usage: .schema <table>"
        row = self.connection.query_one(
            "SELECT sql FROM sqlite_master WHERE type = 'table' AND name = ?",
            (argument,),
        )
        return row[0] if row and row[0] else f"error: no table {argument!r}"

    def _cmd_now(self, argument: str) -> str:
        if not argument:
            override = self.connection.now_override
            if override is None:
                return f"NOW tracks the wall clock (currently {Chronon(self.connection.statement_now_seconds())})"
            return f"NOW = {override} (override)"
        if argument.lower() == "clear":
            self.connection.set_now(None)
            return "NOW override cleared"
        self.connection.set_now(argument)
        return f"NOW = {self.connection.now_override} (override)"

    def _cmd_blade(self, _argument: str) -> str:
        from repro.blade import build_tip_blade

        return build_tip_blade().describe()

    def _explain(self, statement: str) -> str:
        from repro.tsql.explain import explain_temporal

        return explain_temporal(
            self.connection, statement, session=self.tsql
        ).render()

    def _cmd_explain(self, argument: str) -> str:
        if not argument:
            return "usage: .explain <statement>  (or: EXPLAIN TEMPORAL <statement>)"
        return self._explain(argument)

    def _cmd_metrics(self, argument: str) -> str:
        argument = argument.lower()
        if argument == "on":
            obs.enable()
            return "metrics collection enabled"
        if argument == "off":
            obs.disable()
            return "metrics collection disabled"
        if argument == "reset":
            obs.get_registry().reset()
            obs.get_trace_buffer().clear()
            codec.clear_caches(reset_stats=True)
            compiled.clear_cache(reset_stats=True)
            obs.flight.clear()
            return "metrics reset"
        snapshot = obs.snapshot(trace_tail=10)
        if argument == "json":
            return obs.render_json(snapshot)
        if argument == "prom":
            return obs.render_prometheus(snapshot)
        if argument:
            return "usage: .metrics [on|off|json|prom|reset]"
        state = "on" if snapshot.get("enabled") else "off (enable with .metrics on)"
        return f"collection: {state}\n\n{obs.render_text(snapshot)}"

    def _cmd_faults(self, argument: str) -> str:
        if not argument:
            plan = faults.active_plan()
            if plan is None:
                return "fault injection: off (arm with .faults <spec> [seed=N])"
            return (f"fault injection: armed (seed={plan.seed})\n"
                    f"  spec: {plan.spec()}\n"
                    + "\n".join(f"  {rule.as_dict()}" for rule in plan.rules))
        if argument.lower() == "off":
            return ("fault injection disarmed"
                    if faults.disarm() is not None else "fault injection already off")
        if argument.lower() == "points":
            return faults.describe()
        seed = 0
        parts = argument.rsplit(None, 1)
        if len(parts) == 2 and parts[1].startswith("seed="):
            argument = parts[0]
            seed = int(parts[1][len("seed="):])
        plan = faults.arm(argument, seed=seed)
        return f"fault injection armed (seed={seed}): {plan.spec()}"

    def _cmd_flight(self, argument: str) -> str:
        flight = obs.flight
        head, _, tail = argument.partition(" ")
        head = head.lower()
        tail = tail.strip()
        if head == "on":
            flight.enable()
            return "flight recorder enabled"
        if head == "off":
            flight.disable()
            return "flight recorder disabled (ring kept)"
        if head == "clear":
            flight.clear()
            return "flight ring cleared"
        filters = {}
        if head == "last":
            try:
                filters["last"] = int(tail or "10")
            except ValueError:
                return "usage: .flight last <n>"
        elif head == "kind":
            if not tail:
                return "usage: .flight kind <kind-or-prefix>"
            filters["kind"] = tail
        elif head == "json":
            return "\n".join(
                json.dumps(entry, sort_keys=True) for entry in flight.snapshot()
            ) or "(no events)"
        elif head:
            return "usage: .flight [on|off|clear|json|last <n>|kind <k>]"
        events = flight.events(**filters)
        state = "on" if flight.state.enabled else "off (enable with .flight on)"
        if not events:
            return f"flight recorder: {state}\n(no events)"
        rows = [
            (event.seq, f"{event.ts:.6f}", event.kind, event.session or "-",
             " ".join(f"{key}={value}" for key, value in sorted(event.data.items())))
            for event in events
        ]
        return (f"flight recorder: {state} "
                f"({len(flight.get_recorder())} events, "
                f"capacity {flight.get_recorder().capacity})\n"
                + _format_table(("seq", "ts", "kind", "session", "data"), rows))

    # -- browser commands -----------------------------------------------------------

    def _cmd_linq(self, argument: str) -> str:
        from repro import linq as _linq
        from repro.linq import compile_expr

        if not argument:
            return (
                "usage: .linq <expression> — e.g. "
                ".linq t('Prescription', 'p').where("
                "t('Prescription', 'p').drug == 'Tylenol').snapshot()"
            )
        front = self.connection.linq()
        # The helpers are the eval *globals* (not locals) so that names
        # inside a lambda body — which resolve against globals — see
        # them too: ``.linq (lambda p: p.select(call('count', ...`` .
        namespace = {
            "__builtins__": {},
            "q": front,
            "t": front.table,
            "lit": _linq.lit,
            "param": _linq.param,
            "call": _linq.call,
            "allen": _linq.allen,
            "now": _linq.now,
        }
        try:
            result = eval(argument, namespace)  # noqa: S307
        except TipError:
            raise
        except Exception as exc:  # eval: any Python error becomes text
            return f"error: {type(exc).__name__}: {exc}"
        if isinstance(result, _linq.Query):
            if result.params.arity:
                return (
                    f"tSQL: {result.sql()}\n"
                    f"error: query has parameters {result.params.names}; "
                    "inline literals to run it from the shell"
                )
            return f"tSQL: {result.sql()}\n" + self._run_sql(result.sql())
        if isinstance(result, _linq.Expr):
            sql, _ = compile_expr(result)
            return f"{sql}  [{result.type_name}]"
        return repr(result)

    def _cmd_browse(self, argument: str) -> str:
        if not argument:
            return "usage: .browse <select statement>"
        self.tsql.rescan()
        self.browser.load(self.tsql.translate(argument))
        self.browser.reset_window()
        self._browser_loaded = True
        return self.browser.render()

    def _require_browser(self) -> Optional[str]:
        if not self._browser_loaded:
            return "error: no query loaded (use .browse <sql>)"
        return None

    def _cmd_window(self, argument: str) -> str:
        problem = self._require_browser()
        if problem:
            return problem
        parts = argument.split()
        if len(parts) != 2:
            return "usage: .window <start chronon> <days>"
        window = TimeWindow(Chronon.parse(parts[0]), Span.of(days=int(parts[1])))
        self.browser.set_window(window)
        return self.browser.render()

    def _cmd_slide(self, argument: str) -> str:
        problem = self._require_browser()
        if problem:
            return problem
        self.browser.slide(int(argument or "1"))
        return self.browser.render()

    def _cmd_zoom(self, argument: str) -> str:
        problem = self._require_browser()
        if problem:
            return problem
        self.browser.zoom(float(argument or "2"))
        return self.browser.render()

    def close(self) -> None:
        self.connection.close()


def metrics_main(argv: Sequence[str]) -> int:
    """``python -m repro metrics HOST:PORT [--json|--prom] [--reset]``.

    Fetches one METRICS frame from a running TIP server and prints the
    snapshot as a table (default), JSON, or Prometheus text exposition
    (``--prom``, ready for a scrape-to-file bridge).
    """
    from repro.server.client import RemoteTipConnection

    as_json = "--json" in argv
    as_prom = "--prom" in argv
    reset = "--reset" in argv
    targets = [arg for arg in argv if not arg.startswith("--")]
    if len(targets) != 1 or ":" not in targets[0]:
        print("usage: python -m repro metrics HOST:PORT [--json|--prom] [--reset]",
              file=sys.stderr)
        return 2
    host, _, port_text = targets[0].rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: bad port {port_text!r}", file=sys.stderr)
        return 2
    try:
        with RemoteTipConnection(host, port) as connection:
            data = connection.metrics(reset=reset, trace_tail=10)
    except (OSError, TipError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if as_json:
        print(obs.render_json(data))
        return 0
    if as_prom:
        print(obs.render_prometheus(data.get("metrics", {})))
        return 0
    session = data.get("session", {})
    print(f"session #{session.get('id', '?')}: "
          f"{session.get('frames', 0)} frames, "
          f"{session.get('execute', 0)} executes, "
          f"{session.get('errors', 0)} errors")
    print()
    print(obs.render_text(data.get("metrics", {})))
    return 0


def flight_main(argv: Sequence[str]) -> int:
    """``python -m repro flight HOST:PORT [--last N] [--session S] [--trace T] [--kind K]``.

    Fetches one FLIGHT frame from a running TIP server and prints the
    flight-recorder events as JSONL — one event per line, ready for
    ``jq`` or a log shipper.  The filters mirror the wire frame:
    newest N, one connection key, one trace id, or a kind prefix.
    """
    from repro.server.client import RemoteTipConnection

    last = 0
    session = trace = kind = None
    targets: List[str] = []
    arguments = iter(argv)
    for arg in arguments:
        if arg in ("--last", "--session", "--trace", "--kind"):
            value = next(arguments, None)
            if value is None:
                print(f"error: {arg} needs a value", file=sys.stderr)
                return 2
            if arg == "--last":
                try:
                    last = int(value)
                except ValueError:
                    print("error: --last needs an integer", file=sys.stderr)
                    return 2
            elif arg == "--session":
                session = value
            elif arg == "--trace":
                trace = value
            else:
                kind = value
            continue
        if arg.startswith("--"):
            print(f"error: unknown option {arg!r}", file=sys.stderr)
            return 2
        targets.append(arg)
    if len(targets) != 1 or ":" not in targets[0]:
        print("usage: python -m repro flight HOST:PORT "
              "[--last N] [--session S] [--trace T] [--kind K]", file=sys.stderr)
        return 2
    host, _, port_text = targets[0].rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: bad port {port_text!r}", file=sys.stderr)
        return 2
    try:
        with RemoteTipConnection(host, port) as connection:
            data = connection.flight(
                last=last, session=session, trace=trace, kind=kind
            )
    except (OSError, TipError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not data.get("enabled") and not data.get("events"):
        print("flight recorder is disabled on the server", file=sys.stderr)
    for event in data.get("events", []):
        print(json.dumps(event, sort_keys=True))
    return 0


def serve_main(argv: Sequence[str]) -> int:
    """``python -m repro serve [--db PATH] [--host H] [--port P] ...``.

    Runs a :class:`~repro.server.server.TipServer` in the foreground.
    ``--telemetry-port P`` additionally serves the live telemetry HTTP
    endpoint (``/metrics``, ``/debug/flight``, ...; port 0 picks a free
    one); ``--flight-dump PATH`` configures the crash-dump target;
    ``--duration SECONDS`` exits after that long (for scripting and
    tests — the default serves until interrupted).
    """
    from repro.server.server import TipServer

    options = {
        "--db": ":memory:", "--host": "127.0.0.1", "--port": "0",
        "--readers": "4", "--telemetry-port": None, "--flight-dump": None,
        "--slow-threshold": None, "--duration": None,
    }
    profiling = False
    arguments = iter(argv)
    for arg in arguments:
        if arg == "--profiling":
            profiling = True
            continue
        if arg in options:
            value = next(arguments, None)
            if value is None:
                print(f"error: {arg} needs a value", file=sys.stderr)
                return 2
            options[arg] = value
            continue
        print(f"error: unknown option {arg!r}", file=sys.stderr)
        print("usage: python -m repro serve [--db PATH] [--host H] [--port P] "
              "[--readers N] [--telemetry-port P] [--flight-dump PATH] "
              "[--profiling] [--slow-threshold S] [--duration SECONDS]",
              file=sys.stderr)
        return 2
    try:
        port = int(options["--port"])
        readers = int(options["--readers"])
        telemetry_port = (
            None if options["--telemetry-port"] is None
            else int(options["--telemetry-port"])
        )
        slow_threshold = (
            None if options["--slow-threshold"] is None
            else float(options["--slow-threshold"])
        )
        duration = (
            None if options["--duration"] is None
            else float(options["--duration"])
        )
    except ValueError as exc:
        print(f"error: bad option value: {exc}", file=sys.stderr)
        return 2
    server = TipServer(
        options["--db"], host=options["--host"], port=port, readers=readers,
        profiling=profiling, slow_threshold=slow_threshold,
        telemetry_port=telemetry_port, flight_dump=options["--flight-dump"],
    )
    server.start()
    try:
        host, bound_port = server.address
        print(f"serving {options['--db']} on {host}:{bound_port}")
        if server.telemetry_address is not None:
            t_host, t_port = server.telemetry_address
            print(f"telemetry on http://{t_host}:{t_port}/metrics")
        sys.stdout.flush()
        import time as _time

        if duration is not None:
            _time.sleep(duration)
        else:  # pragma: no cover - interactive foreground loop
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - ^C is the exit path
        pass
    finally:
        server.stop()
    return 0


def faults_main(argv: Sequence[str]) -> int:
    """``python -m repro faults [SPEC] [--seed N] [--json]``.

    With no SPEC, prints the injection-point catalogue.  With a SPEC,
    validates it through :func:`repro.faults.parse_plan` and prints the
    parsed plan — the dry-run companion to arming the same spec with
    the ``.faults`` shell command or :func:`repro.faults.arm`.
    """
    as_json = "--json" in argv
    seed = 0
    positional: List[str] = []
    arguments = iter(argv)
    for arg in arguments:
        if arg == "--json":
            continue
        if arg == "--seed":
            try:
                seed = int(next(arguments))
            except (StopIteration, ValueError):
                print("error: --seed needs an integer", file=sys.stderr)
                return 2
            continue
        if arg.startswith("--"):
            print(f"error: unknown option {arg!r}", file=sys.stderr)
            return 2
        positional.append(arg)
    if not positional:
        print("injection points (point:mode[:knob=value,...]; modes: "
              + ", ".join(faults.MODES) + ")")
        print()
        print(faults.describe())
        return 0
    if len(positional) != 1:
        print("usage: python -m repro faults [SPEC] [--seed N] [--json]",
              file=sys.stderr)
        return 2
    try:
        plan = faults.parse_plan(positional[0], seed=seed)
    except faults.FaultPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if as_json:
        print(obs.render_json(plan.as_dict()))
    else:
        print(f"plan ok (seed={seed}): {plan.spec()}")
        for rule in plan.rules:
            print(f"  {rule.point}: {rule.mode} "
                  f"(p={rule.probability:g}, times={rule.times}, "
                  f"after={rule.after}, delay={rule.delay:g})")
    return 0


def explain_main(argv: Sequence[str]) -> int:
    """``python -m repro explain [--db PATH] [--demo N] [--json] SQL``.

    Runs one statement (TSQL2 modifiers and the ``EXPLAIN TEMPORAL``
    prefix both accepted) under the integrated blade engine and a
    layered TimeDB-style mirror, and prints the side-by-side cost
    report.  Without ``--db``, a synthetic medical database is
    generated in memory (``--demo N`` prescriptions, default 50) so
    ``Prescription`` is queryable out of the box.
    """
    from repro.tsql.explain import explain_temporal

    as_json = "--json" in argv
    database = ""
    demo = 50
    positional: List[str] = []
    arguments = iter(argv)
    for arg in arguments:
        if arg == "--json":
            continue
        if arg in ("--db", "--demo"):
            value = next(arguments, None)
            if value is None:
                print(f"error: {arg} needs a value", file=sys.stderr)
                return 2
            if arg == "--db":
                database = value
            else:
                try:
                    demo = int(value)
                except ValueError:
                    print("error: --demo needs an integer", file=sys.stderr)
                    return 2
            continue
        if arg.startswith("--"):
            print(f"error: unknown option {arg!r}", file=sys.stderr)
            return 2
        positional.append(arg)
    if len(positional) != 1:
        print("usage: python -m repro explain [--db PATH] [--demo N] [--json] SQL",
              file=sys.stderr)
        return 2
    connection = repro.connect(database or ":memory:")
    try:
        if not database:
            from repro.workload import MedicalConfig, generate_prescriptions, load_tip

            rows = generate_prescriptions(
                MedicalConfig(n_prescriptions=demo, seed=1999)
            )
            load_tip(connection, rows, table="Prescription")
        try:
            report = explain_temporal(connection, positional[0])
        except (TipError, sqlite3.Error, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(obs.render_json(report.as_dict()) if as_json else report.render())
    finally:
        connection.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """The stdin REPL loop, or a one-shot subcommand.

    Subcommands: ``metrics``, ``flight``, ``serve``, ``faults``,
    ``explain``.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "faults":
        return faults_main(arguments[1:])
    if arguments and arguments[0] == "explain":
        return explain_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        return serve_main(arguments[1:])
    if arguments and arguments[0] in ("metrics", "flight"):
        try:
            if arguments[0] == "flight":
                return flight_main(arguments[1:])
            return metrics_main(arguments[1:])
        except BrokenPipeError:
            # stdout went away (e.g. piped into `head`); not an error.
            # Point the fd at devnull so interpreter shutdown doesn't
            # trip over flushing the closed pipe.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    database = arguments[0] if arguments else ":memory:"
    shell = TipShell(database)
    print(f"TIP shell — database: {database}.  .help for help, .quit to leave.")
    try:
        while not shell.done:
            try:
                line = input("tip> ")
            except EOFError:
                break
            output = shell.execute_line(line)
            if output:
                print(output)
    finally:
        shell.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
