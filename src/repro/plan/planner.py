"""The temporal query planner: route matched shapes to the kernels.

Sits between tSQL translation and SQLite execution.  For each
translated statement the planner decides — visibly, via ``EXPLAIN
TEMPORAL`` and the ``plan.*`` counters — whether to evaluate it with a
set-based kernel (:mod:`repro.plan.kernels`) or to leave it on the
naive UDF path.  The naive path is always correct, so every decision
here is allowed to say "no": unmatched shapes, TIP-typed comparison
columns, inputs below the row threshold, an active profiler, or an
armed fault plan that does not target ``plan.kernel`` all fall back.

Shape matching happens once per compiled statement: the statement
cache stamps the matched shape onto
:attr:`repro.tsql.compiled.CompiledStatement.shape`, and because that
cache is generation-keyed, any DDL or registry change that invalidates
prepared statements invalidates kernel plans with it.  Callers without
a compiled statement go through a small shape LRU keyed on the same
generation.  Schema lookups (``PRAGMA table_info``) are cached per
connection under the same generation key.

Knobs: ``TIP_KERNEL=0`` disables the planner process-wide,
``TIP_KERNEL_MIN_ROWS`` (default 256) sets the bigger-side row count
below which bulk fetching cannot beat SQLite's own loop; both are
adjustable at runtime via :func:`configure`.
"""

from __future__ import annotations

import gc
import os
import weakref
from typing import Dict, List, Optional, Tuple, Union

from repro.codec.cache import LRUCache
from repro.core.nowctx import bind_now_seconds, reset_now
from repro.errors import TipError
from repro.faults import state as _FAULTS
from repro.obs import flight as _flight
from repro.obs.profile import state as _PROFILE
from repro.obs.registry import get_registry as _obs_registry
from repro.obs.registry import state as _obs_state
from repro.plan import kernels, shapes
from repro.plan.kernels import KernelResult
from repro.plan.shapes import CoalesceShape, JoinShape
from repro.tsql import compiled

__all__ = [
    "state", "configure", "is_candidate", "maybe_execute_kernel",
    "describe", "clear_caches", "DEFAULT_MIN_ROWS",
]

DEFAULT_MIN_ROWS = 256

#: Declared types whose storage is TIP-encoded: comparing or grouping
#: on them in Python would diverge from the blade's semantics, so any
#: such column in a residual/key position vetoes the kernel.
TIP_DECLTYPES = frozenset(
    {"ELEMENT", "PERIOD", "CHRONON", "SPAN", "INSTANT"}
)


def _env_enabled() -> bool:
    return os.environ.get("TIP_KERNEL", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _env_min_rows() -> int:
    raw = os.environ.get("TIP_KERNEL_MIN_ROWS", "")
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MIN_ROWS


class PlanState:
    """Process-wide planner switches, read per statement without a lock."""

    __slots__ = ("enabled", "min_rows")

    def __init__(self) -> None:
        self.enabled = _env_enabled()
        self.min_rows = _env_min_rows()


state = PlanState()

#: (generation, translated sql) -> (shape | None,); keyed on the
#: statement-cache generation so DDL invalidates kernel plans exactly
#: when it invalidates prepared statements.
SHAPE_CACHE = LRUCache("plan.shape", 256)

#: connection -> (generation, {table: {column: decltype-or-""}}).
_SCHEMA_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def configure(
    *,
    enabled: Optional[bool] = None,
    min_rows: Optional[int] = None,
) -> None:
    """Adjust the planner knobs at runtime (used by benches and tests)."""
    if enabled is not None:
        state.enabled = enabled
        if not enabled:
            SHAPE_CACHE.clear()
    if min_rows is not None:
        state.min_rows = max(0, min_rows)


def clear_caches() -> None:
    """Drop cached shapes and schemas (tests; ``faults.arm`` bypasses
    the caches instead of clearing them, see :func:`_lookup_shape`)."""
    SHAPE_CACHE.clear()
    _SCHEMA_CACHE.clear()


def is_candidate(sql: str) -> bool:
    """Cheap pre-filter: does *sql* contain a kernel-evaluable operator?

    One lowercase scan; the hot prepared path pays only this check, so
    a SNAPSHOT query (``contains_instant``) or plain SQL skips the
    matcher entirely.
    """
    lowered = sql.lower()
    return "tintersect(" in lowered or "group_union(" in lowered


# -- decision pipeline --------------------------------------------------


def _count(value_name: str) -> None:
    if _obs_state.enabled:
        _obs_registry().counter(value_name).inc()


def _fallback(reason: str) -> None:
    _count(f"plan.fallback.{reason}")
    if _flight.state.enabled:
        _flight.record("plan.fallback", reason=reason)


def _lookup_shape(sql: str) -> Optional[Union[JoinShape, CoalesceShape]]:
    """Match *sql*, via the generation-keyed cache when no plan is armed."""
    if _FAULTS.plan is not None:
        # Armed chaos runs bypass the cache (mirroring the statement
        # cache) so every run exercises the same code path.
        return shapes.match(sql)
    key = (compiled.generation(), sql)
    cached = SHAPE_CACHE.get(key)
    if cached is not None:
        _count("plan.cache.hit")
        return cached[0]
    _count("plan.cache.miss")
    shape = shapes.match(sql)
    SHAPE_CACHE.put(key, (shape,))
    return shape


def _table_schema(connection, table: str) -> Optional[Dict[str, str]]:
    """``{column: DECLTYPE}`` for *table* (generation-cached), or None."""
    generation = compiled.generation()
    cached = _SCHEMA_CACHE.get(connection)
    if cached is None or cached[0] != generation:
        cached = (generation, {})
        _SCHEMA_CACHE[connection] = cached
    tables = cached[1]
    if table not in tables:
        try:
            rows = connection.query(f"PRAGMA table_info({table})")
        except Exception:
            rows = []
        tables[table] = {
            str(row[1]): (str(row[2]) if row[2] is not None else "").upper()
            for row in rows
        }
    schema = tables[table]
    return schema or None


def _schema_ok(connection, shape) -> bool:
    """Every referenced column exists and key/residual columns are
    plain-typed (TIP-typed values would need blade comparison rules)."""
    if shape.kind == "join":
        left = _table_schema(connection, shape.left_table)
        right = _table_schema(connection, shape.right_table)
        if left is None or right is None:
            return False
        if left.get(shape.left_valid) != "ELEMENT":
            return False
        if right.get(shape.right_valid) != "ELEMENT":
            return False
        for output in shape.outputs:
            schema = left if output.alias == shape.left_alias else right
            if output.column not in schema:
                return False
        for left_col, right_col in shape.equalities:
            if left.get(left_col, "") in TIP_DECLTYPES or left_col not in left:
                return False
            if right.get(right_col, "") in TIP_DECLTYPES \
                    or right_col not in right:
                return False
        conditions = (shape.cross + shape.left_filters
                      + shape.right_filters)
        for condition in conditions:
            for operand in (condition.left, condition.right):
                if operand.kind != "col":
                    continue
                schema = left if operand.alias == shape.left_alias else right
                if operand.column not in schema \
                        or schema[operand.column] in TIP_DECLTYPES:
                    return False
        return True
    schema = _table_schema(connection, shape.table)
    if schema is None:
        return False
    if schema.get(shape.agg_column) != "ELEMENT":
        return False
    for column in shape.group_by:
        if column not in schema or schema[column] in TIP_DECLTYPES:
            return False
    for condition in shape.filters:
        for operand in (condition.left, condition.right):
            if operand.kind == "col" and (
                operand.column not in schema
                or schema[operand.column] in TIP_DECLTYPES
            ):
                return False
    return True


def _input_counts(connection, shape) -> List[int]:
    if shape.kind == "join":
        tables = [shape.left_table, shape.right_table]
    else:
        tables = [shape.table]
    counts = []
    for table in tables:
        row = connection.query_one(f"SELECT COUNT(*) FROM {table}")
        counts.append(int(row[0]) if row else 0)
    return counts


def maybe_execute_kernel(
    connection, sql: str, shape=None
) -> Optional[KernelResult]:
    """Evaluate *sql* with a kernel, or return None to run it naively.

    *connection* is the :class:`~repro.client.connection.TipConnection`
    the statement would otherwise run on (locally the session's own,
    on the server the checked-out pool reader), so reads stay inside
    the caller's transaction/snapshot scope.

    *shape* is the compile-time matched shape when the caller already
    carries it (:attr:`repro.tsql.compiled.CompiledStatement.shape` —
    the hot prepared path, where re-matching per call would cost more
    than the statement); left None, the shape is matched here via the
    generation-keyed cache.  Runtime vetoes (armed faults, profiler,
    schema types, row counts) apply identically either way.
    """
    if not state.enabled:
        return None
    if shape is None and not is_candidate(sql):
        return None
    armed = _FAULTS.plan
    if armed is not None and not any(
        rule.point == "plan.kernel" for rule in armed.rules
    ):
        # A chaos plan aimed elsewhere: keep the run on the exact same
        # code path it exercised before the planner existed.
        _fallback("faults")
        return None
    if _PROFILE.enabled or _PROFILE.forced:
        # The profiler reports blade-routine work; a kernel run would
        # show an empty profile for a query that did real work.
        _fallback("profiler")
        return None
    if shape is None:
        shape = _lookup_shape(sql)
    if shape is None:
        _fallback("shape")
        return None
    if not _schema_ok(connection, shape):
        _fallback("schema")
        return None
    if max(_input_counts(connection, shape)) < state.min_rows:
        _fallback("small")
        return None
    if armed is not None:
        # The dedicated injection point: fires before the bulk fetch,
        # so a raise leaves the connection with nothing to roll back.
        armed.apply("plan.kernel")
    now_seconds = connection.statement_now_seconds()
    token = bind_now_seconds(now_seconds)
    # Kernels allocate result rows in bulk and drop nothing cyclic;
    # pausing the collector keeps generation scans from re-walking the
    # growing result list (reference counting still frees everything).
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if shape.kind == "join":
            result = kernels.execute_join(connection, shape, now_seconds)
            _count("plan.kernel.join")
            if _obs_state.enabled:
                _obs_registry().counter("plan.join.candidates").add(
                    result.stats.get("candidates", 0)
                )
        else:
            result = kernels.execute_coalesce(connection, shape, now_seconds)
            _count("plan.kernel.coalesce")
    finally:
        reset_now(token)
        if gc_was_enabled:
            gc.enable()
    if _flight.state.enabled:
        _flight.record(
            "plan.kernel", shape=shape.kind, strategy=result.strategy,
            rows=len(result.rows), **result.stats,
        )
    return result


def describe(connection, sql: str) -> Dict[str, object]:
    """The planner's decision for *sql*, without executing anything.

    Powers the ``temporal strategy:`` line of ``EXPLAIN TEMPORAL``.
    """
    if not state.enabled:
        return {"strategy": "naive", "reason": "planner disabled"}
    if not is_candidate(sql):
        return {"strategy": "naive", "reason": "no set-evaluable operator"}
    shape = _lookup_shape(sql)
    if shape is None:
        return {"strategy": "naive", "reason": "statement shape not matched"}
    if not _schema_ok(connection, shape):
        return {"strategy": "naive",
                "reason": "column types outside kernel support"}
    try:
        counts = _input_counts(connection, shape)
    except TipError:
        counts = []
    if not counts or max(counts) < state.min_rows:
        return {
            "strategy": "naive",
            "reason": f"input below threshold ({state.min_rows} rows)",
        }
    if shape.kind == "join":
        kernel = "hash" if shape.equalities else "interval-sweep"
        tables = [shape.left_table, shape.right_table]
    else:
        kernel = "sweep"
        tables = [shape.table]
    return {
        "strategy": "kernel", "shape": shape.kind, "kernel": kernel,
        "tables": tables, "rows": counts,
    }
