"""Pattern matching for the temporal query planner.

The planner (:mod:`repro.plan.planner`) only rewrites statements it
*fully* understands; everything else keeps the tuple-at-a-time UDF
path.  This module is the understanding part: it recognizes the two
translated-SQL shapes the tSQL preprocessor (and hand-written TIP SQL
in the same spelling) produces for set-evaluable temporal operations.

**Sequenced overlap join** (two tables)::

    SELECT a.x, b.y, tintersect(a.valid, b.valid) AS valid
    FROM L AS a, R AS b
    WHERE (<residual>) AND overlaps(a.valid, b.valid)

optionally clipped to a period (the ``VALIDTIME PERIOD`` translation
wraps the validity in ``restrict(..., period('[..]'))`` and adds one
``overlaps(v, to_element(period('[..]')))`` conjunct per side).  The
residual may be any top-level AND of simple comparisons —
``alias.col <op> alias.col`` or ``alias.col <op> literal`` — which the
kernels evaluate with SQLite's own comparison semantics.

**Coalesce** (one table, the paper's ``group_union`` aggregation)::

    SELECT k1, k2, group_union(valid) FROM T [WHERE <residual>]
    GROUP BY k1, k2

with the aggregate optionally wrapped in ``length(...)`` or
``length_seconds(...)`` (Section 2's time-on-medication query).

Matching is deliberately conservative: subqueries, three-way joins,
ORDER BY / HAVING / LIMIT tails, ``DISTINCT``, OR-connected
predicates, bind parameters, and anything else unrecognized all yield
``None`` — the caller falls back to the naive path, which is always
correct.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import TranslationError
from repro.tsql.preprocessor import _parse_from_items, split_select

__all__ = [
    "Operand",
    "Condition",
    "OutputColumn",
    "JoinShape",
    "CoalesceShape",
    "match",
]

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_QUALREF_RE = re.compile(rf"^(?P<alias>{_IDENT})\.(?P<column>{_IDENT})$")
_BARE_RE = re.compile(rf"^{_IDENT}$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][+-]?\d+)$")
_STRING_RE = re.compile(r"^'(?P<body>(?:[^']|'')*)'$")
_PERIOD_LIT = r"period\s*\(\s*'\[(?P<period>[^']*)\]'\s*\)"
_TINTERSECT_RE = re.compile(
    rf"^tintersect\s*\(\s*(?P<a>{_IDENT}\.{_IDENT})\s*,"
    rf"\s*(?P<b>{_IDENT}\.{_IDENT})\s*\)$",
    re.IGNORECASE,
)
_RESTRICT_RE = re.compile(
    rf"^restrict\s*\(\s*(?P<inner>tintersect\s*\([^()]*\))\s*,"
    rf"\s*{_PERIOD_LIT}\s*\)$",
    re.IGNORECASE,
)
_PAIR_OVERLAP_RE = re.compile(
    rf"^overlaps\s*\(\s*(?P<a>{_IDENT}\.{_IDENT})\s*,"
    rf"\s*(?P<b>{_IDENT}\.{_IDENT})\s*\)$",
    re.IGNORECASE,
)
_WINDOW_OVERLAP_RE = re.compile(
    rf"^overlaps\s*\(\s*(?P<v>{_IDENT}\.{_IDENT})\s*,"
    rf"\s*to_element\s*\(\s*{_PERIOD_LIT}\s*\)\s*\)$",
    re.IGNORECASE,
)
_GROUP_UNION_RE = re.compile(
    rf"^(?:(?P<wrapper>length_seconds|length)\s*\(\s*)?"
    rf"group_union\s*\(\s*(?P<arg>(?:{_IDENT}\.)?{_IDENT})\s*\)"
    rf"(?(wrapper)\s*\))$",
    re.IGNORECASE,
)
_GROUP_BY_TAIL_RE = re.compile(
    r"^GROUP\s+BY\s+(?P<keys>.+)$", re.IGNORECASE | re.DOTALL
)
#: Comparison operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">")
#: Words that would change comparison semantics if treated as values.
_RESERVED_WORDS = frozenset({"null", "true", "false", "not", "in", "is",
                             "like", "between", "or", "and", "case"})


@dataclass(frozen=True)
class Operand:
    """One side of a comparison: a column reference or a literal."""

    kind: str                 # "col" | "lit"
    alias: str = ""           # "" for a bare (unqualified) column
    column: str = ""
    value: object = None


@dataclass(frozen=True)
class Condition:
    """``left <op> right`` with at least one column operand."""

    left: Operand
    op: str
    right: Operand


@dataclass(frozen=True)
class OutputColumn:
    """A plain column in the select list, with its result-column name."""

    name: str     # what sqlite3 would call the result column
    alias: str    # source table alias ("" when written bare)
    column: str   # source column name


@dataclass(frozen=True)
class JoinShape:
    """A sequenced two-table overlap join the kernels can evaluate."""

    left_table: str
    left_alias: str
    right_table: str
    right_alias: str
    outputs: Tuple[OutputColumn, ...]     # select list minus the validity slot
    valid_at: int                         # where the validity column goes
    valid_name: str
    left_valid: str                       # validity column on the left table
    right_valid: str
    window: Optional[str] = None          # VALIDTIME PERIOD text, sans brackets
    equalities: Tuple[Tuple[str, str], ...] = ()   # (left col, right col)
    cross: Tuple[Condition, ...] = ()     # non-equality cross-side residuals
    left_filters: Tuple[Condition, ...] = ()
    right_filters: Tuple[Condition, ...] = ()

    kind: str = field(default="join", init=False)


@dataclass(frozen=True)
class CoalesceShape:
    """A ``group_union`` coalescing aggregation over one table."""

    table: str
    alias: str
    outputs: Tuple[OutputColumn, ...]     # select list minus the aggregate
    agg_at: int                           # where the aggregate column goes
    agg_name: str
    agg_wrapper: str                      # "" | "length" | "length_seconds"
    agg_column: str
    group_by: Tuple[str, ...]             # column names, select-independent
    filters: Tuple[Condition, ...] = ()

    kind: str = field(default="coalesce", init=False)


# -- lexical helpers ----------------------------------------------------


def _split_top_level_and(text: str) -> List[str]:
    """Split on the word AND at paren/quote depth zero."""
    parts: List[str] = []
    upper = text.upper()
    depth = 0
    in_string = False
    start = 0
    index = 0
    while index < len(text):
        char = text[index]
        if in_string:
            if char == "'":
                in_string = False
        elif char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and upper.startswith("AND", index):
            before_ok = index == 0 or not (text[index - 1].isalnum()
                                           or text[index - 1] == "_")
            after = index + 3
            after_ok = after >= len(text) or not (text[after].isalnum()
                                                  or text[after] == "_")
            if before_ok and after_ok:
                parts.append(text[start:index])
                start = after
                index = after
                continue
        index += 1
    parts.append(text[start:])
    return [part.strip() for part in parts if part.strip()]


def _strip_parens(text: str) -> str:
    """Remove enclosing parentheses that wrap the whole expression."""
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        closes_early = False
        for index, char in enumerate(text):
            if char == "'":
                # A quote inside the candidate parens: bail out of the
                # cheap scan and keep the text as-is (conjuncts with
                # strings still strip when the parens pair cleanly,
                # because quotes cannot hide an unbalanced paren here —
                # the SQL already parsed).
                pass
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and index < len(text) - 1:
                    closes_early = True
                    break
        if closes_early:
            break
        text = text[1:-1].strip()
    return text


def _conjuncts(where: str) -> List[str]:
    """Flatten a WHERE clause into top-level AND-ed atoms."""
    out: List[str] = []
    for part in _split_top_level_and(where):
        stripped = _strip_parens(part)
        if stripped != part or len(_split_top_level_and(stripped)) > 1:
            out.extend(_conjuncts(stripped))
        else:
            out.append(stripped)
    return out


def _split_alias_clause(item: str) -> Tuple[str, Optional[str]]:
    """``expr [AS name]`` split at the top-level AS; (expr, name|None)."""
    upper = item.upper()
    depth = 0
    in_string = False
    for index in range(len(item) - 1, -1, -1):
        char = item[index]
        if in_string:
            if char == "'":
                in_string = False
        elif char == "'":
            in_string = True
        elif char == ")":
            depth += 1
        elif char == "(":
            depth -= 1
        elif depth == 0 and upper.startswith("AS", index):
            before_ok = index > 0 and upper[index - 1].isspace()
            after = index + 2
            after_ok = after < len(item) and item[after].isspace()
            if before_ok and after_ok:
                name = item[after:].strip()
                if _BARE_RE.match(name):
                    return item[:index].strip(), name
                return item, None
    return item.strip(), None


def _parse_operand(text: str, aliases: Sequence[str],
                   allow_bare: bool) -> Optional[Operand]:
    text = text.strip()
    lowered = text.lower()
    if lowered in _RESERVED_WORDS:
        return None
    match = _QUALREF_RE.match(text)
    if match:
        if match["alias"] not in aliases:
            return None
        return Operand("col", alias=match["alias"], column=match["column"])
    if allow_bare and _BARE_RE.match(text):
        return Operand("col", alias="", column=text)
    if _INT_RE.match(text):
        return Operand("lit", value=int(text))
    if _FLOAT_RE.match(text):
        return Operand("lit", value=float(text))
    match = _STRING_RE.match(text)
    if match:
        return Operand("lit", value=match["body"].replace("''", "'"))
    return None


_FLIPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _parse_comparison(text: str, aliases: Sequence[str],
                      allow_bare: bool) -> Optional[Condition]:
    """One ``side <op> side`` comparison, or None."""
    depth = 0
    in_string = False
    index = 0
    while index < len(text):
        char = text[index]
        if in_string:
            if char == "'":
                in_string = False
            index += 1
            continue
        if char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0:
            for op in _OPERATORS:
                if text.startswith(op, index):
                    left = _parse_operand(text[:index], aliases, allow_bare)
                    right = _parse_operand(text[index + len(op):], aliases,
                                           allow_bare)
                    if left is None or right is None:
                        return None
                    canon = {"==": "=", "<>": "!="}.get(op, op)
                    if left.kind == "lit" and right.kind == "col":
                        left, right = right, left
                        canon = _FLIPPED.get(canon, canon)
                    if left.kind != "col":
                        return None  # two literals: not worth modeling
                    return Condition(left, canon, right)
        index += 1
    return None


# -- the matcher --------------------------------------------------------


def match(sql: str) -> Optional[Union[JoinShape, CoalesceShape]]:
    """Recognize *sql* as a kernel-evaluable shape, or return None."""
    stripped = sql.strip()
    if not stripped.upper().startswith("SELECT") or "?" in stripped:
        return None
    try:
        parts = split_select(stripped)
        from_items = _parse_from_items(parts.from_list)
    except TranslationError:
        return None
    if parts.select_list.upper().startswith(("DISTINCT", "ALL ")):
        return None
    if len(from_items) == 2:
        return _match_join(parts, from_items)
    if len(from_items) == 1:
        return _match_coalesce(parts, from_items[0])
    return None


def _match_join(parts, from_items) -> Optional[JoinShape]:
    if parts.tail:
        return None
    (left_table, left_alias), (right_table, right_alias) = from_items
    if left_alias == right_alias:
        return None
    aliases = (left_alias, right_alias)

    outputs: List[OutputColumn] = []
    valid_at = None
    valid_name = None
    validity_refs = None
    window = None
    items = _split_select_items(parts.select_list)
    if items is None:
        return None
    for index, item in enumerate(items):
        expr, name = _split_alias_clause(item)
        restrict = _RESTRICT_RE.match(expr)
        inner = restrict["inner"] if restrict else expr
        tint = _TINTERSECT_RE.match(inner.strip())
        if tint:
            if valid_at is not None:
                return None  # two validity expressions: not our shape
            valid_at = index
            valid_name = name if name is not None else expr
            validity_refs = (tint["a"], tint["b"])
            window = restrict["period"] if restrict else None
            continue
        ref = _QUALREF_RE.match(expr)
        if ref is None or ref["alias"] not in aliases or name == "":
            return None
        outputs.append(OutputColumn(
            name=name if name is not None else ref["column"],
            alias=ref["alias"], column=ref["column"],
        ))
    if valid_at is None or parts.where is None:
        return None

    # Resolve the validity refs: exactly one per side.
    by_alias = {}
    for text in validity_refs:
        ref = _QUALREF_RE.match(text)
        if ref is None or ref["alias"] in by_alias:
            return None
        by_alias[ref["alias"]] = ref["column"]
    if set(by_alias) != set(aliases):
        return None
    left_valid, right_valid = by_alias[left_alias], by_alias[right_alias]

    pair_seen = False
    window_seen = set()
    equalities: List[Tuple[str, str]] = []
    cross: List[Condition] = []
    left_filters: List[Condition] = []
    right_filters: List[Condition] = []
    for conjunct in _conjuncts(parts.where):
        pair = _PAIR_OVERLAP_RE.match(conjunct)
        if pair:
            if pair_seen or {pair["a"], pair["b"]} != set(validity_refs):
                return None
            pair_seen = True
            continue
        window_match = _WINDOW_OVERLAP_RE.match(conjunct)
        if window_match:
            if window is None or window_match["period"] != window:
                return None
            if window_match["v"] not in validity_refs:
                return None
            window_seen.add(window_match["v"])
            continue
        condition = _parse_comparison(conjunct, aliases, allow_bare=False)
        if condition is None:
            return None
        sides = {op.alias for op in (condition.left, condition.right)
                 if op.kind == "col"}
        if sides == set(aliases):
            if condition.op == "=":
                left_op, right_op = condition.left, condition.right
                if left_op.alias == right_alias:
                    left_op, right_op = right_op, left_op
                equalities.append((left_op.column, right_op.column))
            else:
                cross.append(_normalize_cross(condition, left_alias))
        elif sides == {left_alias}:
            left_filters.append(condition)
        else:
            right_filters.append(condition)
    if not pair_seen:
        return None
    if window is not None and window_seen != set(validity_refs):
        return None

    # The validity columns take part in overlaps/tintersect only; a
    # validity column also appearing in a comparison would need blob
    # ordering semantics the kernels do not model.
    for condition in cross + left_filters + right_filters:
        for operand in (condition.left, condition.right):
            if operand.kind == "col" and (
                (operand.alias == left_alias and operand.column == left_valid)
                or (operand.alias == right_alias
                    and operand.column == right_valid)):
                return None
    return JoinShape(
        left_table=left_table, left_alias=left_alias,
        right_table=right_table, right_alias=right_alias,
        outputs=tuple(outputs), valid_at=valid_at, valid_name=valid_name,
        left_valid=left_valid, right_valid=right_valid, window=window,
        equalities=tuple(equalities), cross=tuple(cross),
        left_filters=tuple(left_filters), right_filters=tuple(right_filters),
    )


def _normalize_cross(condition: Condition, left_alias: str) -> Condition:
    """Cross-side comparisons with the left table's operand first."""
    if condition.left.alias == left_alias:
        return condition
    return Condition(condition.right,
                     _FLIPPED.get(condition.op, condition.op),
                     condition.left)


def _match_coalesce(parts, from_item) -> Optional[CoalesceShape]:
    table, alias = from_item
    tail_match = _GROUP_BY_TAIL_RE.match(parts.tail or "")
    if not tail_match:
        return None
    group_by: List[str] = []
    for key in tail_match["keys"].split(","):
        operand = _parse_operand(key, (alias,), allow_bare=True)
        if operand is None or operand.kind != "col":
            return None
        group_by.append(operand.column)
    if not group_by:
        return None

    outputs: List[OutputColumn] = []
    agg_at = None
    agg_name = None
    agg_wrapper = ""
    agg_column = None
    items = _split_select_items(parts.select_list)
    if items is None:
        return None
    for index, item in enumerate(items):
        expr, name = _split_alias_clause(item)
        agg = _GROUP_UNION_RE.match(expr)
        if agg:
            if agg_at is not None:
                return None
            agg_at = index
            agg_name = name if name is not None else expr
            agg_wrapper = (agg["wrapper"] or "").lower()
            operand = _parse_operand(agg["arg"], (alias,), allow_bare=True)
            if operand is None or operand.kind != "col":
                return None
            agg_column = operand.column
            continue
        operand = _parse_operand(expr, (alias,), allow_bare=True)
        if operand is None or operand.kind != "col" or name == "":
            return None
        if operand.column not in group_by:
            return None  # bare-value select outside GROUP BY: arbitrary row
        outputs.append(OutputColumn(
            name=name if name is not None else operand.column,
            alias=operand.alias, column=operand.column,
        ))
    if agg_at is None:
        return None

    filters: List[Condition] = []
    if parts.where:
        for conjunct in _conjuncts(parts.where):
            condition = _parse_comparison(conjunct, (alias,), allow_bare=True)
            if condition is None:
                return None
            filters.append(condition)
    for condition in filters:
        for operand in (condition.left, condition.right):
            if operand.kind == "col" and operand.column == agg_column:
                return None
    if agg_column in group_by:
        return None
    return CoalesceShape(
        table=table, alias=alias, outputs=tuple(outputs), agg_at=agg_at,
        agg_name=agg_name, agg_wrapper=agg_wrapper, agg_column=agg_column,
        group_by=tuple(group_by), filters=tuple(filters),
    )


def _split_select_items(select_list: str) -> Optional[List[str]]:
    """Top-level comma split; None when the list is empty or has ``*``."""
    items: List[str] = []
    depth = 0
    in_string = False
    start = 0
    for index, char in enumerate(select_list):
        if in_string:
            if char == "'":
                in_string = False
            continue
        if char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            items.append(select_list[start:index].strip())
            start = index + 1
    items.append(select_list[start:].strip())
    if not items or any(not item or "*" in item for item in items):
        return None
    return items
