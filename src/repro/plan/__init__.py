"""Temporal query planning: set-based kernels behind a shape matcher.

The paper's argument for *integrated* temporal support is that the
engine can pick set-oriented algorithms for temporal operators instead
of evaluating predicates tuple-at-a-time.  This package is that
argument in code: :mod:`repro.plan.shapes` recognizes translated
sequenced-join and coalesce statements, :mod:`repro.plan.kernels`
evaluates them with interval sort-merge / hash / tree-probe joins and
a single-pass sweep coalesce, and :mod:`repro.plan.planner` decides —
per statement, observably — which path runs.  Anything the matcher
does not fully understand keeps the naive UDF path, which remains the
semantics oracle (``tests/test_plan_kernels.py`` holds the two paths
differentially equal).
"""

from repro.plan.kernels import KernelResult, execute_coalesce, execute_join, sql_compare
from repro.plan.planner import (
    clear_caches,
    configure,
    describe,
    is_candidate,
    maybe_execute_kernel,
    state,
)
from repro.plan.shapes import CoalesceShape, JoinShape, match

__all__ = [
    "KernelResult", "execute_join", "execute_coalesce", "sql_compare",
    "configure", "describe", "is_candidate", "maybe_execute_kernel",
    "clear_caches", "state",
    "JoinShape", "CoalesceShape", "match",
]
