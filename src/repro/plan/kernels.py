"""Set-based evaluation kernels for matched temporal shapes.

These are the paper's "integrated evaluation" made concrete: instead of
letting SQLite grind ``overlaps(a.valid, b.valid)`` over the full cross
product (one UDF call and two blob decodes per candidate tuple), the
planner bulk-fetches both sides once and joins them with interval
algorithms:

``hash``
    Cross-alias equality conjuncts become hash-join keys (the
    temporal-graph path query joins on ``e1.dst = e2.src``); the
    overlap test runs only within each hash bucket.
``merge``
    No equalities: both sides' grounded periods are swept in start
    order with an active set per side (sort-merge interval join).
``tree``
    Skewed sides: the smaller side's periods are bulk-loaded into an
    :meth:`IntervalTree.build` and the larger side probes it.
``sweep``
    Coalesce: one pass that groups rows, pools their periods, and
    normalizes each group once (exactly ``GroupUnion``'s cost model).

Every kernel grounds elements at one statement ``NOW`` and produces
rows value-identical to the naive path — the differential suite
(``tests/test_plan_kernels.py``) holds them equal as multisets.
Residual comparisons go through :func:`sql_compare`, which mirrors
SQLite's storage-class semantics (NULL never matches; numeric < text <
blob across classes; ``1 = 1.0``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import repeat
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

try:  # the hash strategy emits through numpy when it is available
    import numpy as _np
except ImportError:  # pragma: no cover - baked into the toolchain image
    _np = None

from repro.core import interval_algebra as ia
from repro.core.element import Element
from repro.errors import TipTypeError
from repro.plan.shapes import CoalesceShape, Condition, JoinShape
from repro.index.interval_tree import IntervalTree

__all__ = ["KernelResult", "execute_join", "execute_coalesce", "sql_compare"]

Pair = Tuple[int, int]

#: When one side has this many times more periods than the other, probe
#: an interval tree built over the small side instead of sweeping both.
TREE_SKEW = 8


@dataclass
class KernelResult:
    """What a kernel hands back to the planner."""

    rows: List[Tuple]
    columns: List[str]
    strategy: str                  # "hash" | "merge" | "tree" | "sweep"
    now_seconds: int
    stats: Dict[str, int] = field(default_factory=dict)


# -- SQLite comparison semantics ---------------------------------------


def _storage_class(value: object) -> int:
    if isinstance(value, (int, float)):
        return 0
    if isinstance(value, str):
        return 1
    return 2  # blob


def sql_compare(left: object, op: str, right: object) -> bool:
    """``left <op> right`` with SQLite's comparison rules.

    NULL comparisons are not true (the WHERE filter drops them); values
    of different storage classes never compare equal and order as
    numeric < text < blob; within a class, ordinary ordering applies
    (so ``1 = 1.0``, just like SQLite's numeric affinity).
    """
    if left is None or right is None:
        return False
    left_class = _storage_class(left)
    right_class = _storage_class(right)
    if left_class != right_class:
        if op == "=":
            return False
        if op == "!=":
            return True
        ordered = left_class < right_class
        return ordered if op in ("<", "<=") else not ordered
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _evaluate(condition: Condition, resolve) -> bool:
    """*resolve(operand)* supplies column values; literals pass through."""
    left = condition.left.value if condition.left.kind == "lit" \
        else resolve(condition.left)
    right = condition.right.value if condition.right.kind == "lit" \
        else resolve(condition.right)
    return sql_compare(left, condition.op, right)


# -- side preparation ---------------------------------------------------


class _Side:
    """One fetched, filtered, grounded join input."""

    __slots__ = ("rows", "pairs", "positions")

    def __init__(self, rows: List[Tuple], pairs: List[List[Pair]],
                 positions: Dict[str, int]) -> None:
        self.rows = rows            # surviving rows, fetch order
        self.pairs = pairs          # grounded validity pairs per row
        self.positions = positions  # column name -> tuple position


def _columns_for_side(shape: JoinShape, alias: str, valid: str) -> List[str]:
    needed = {valid}
    for output in shape.outputs:
        if output.alias == alias:
            needed.add(output.column)
    for left_col, right_col in shape.equalities:
        needed.add(left_col if alias == shape.left_alias else right_col)
    conditions = list(shape.cross)
    conditions += shape.left_filters if alias == shape.left_alias \
        else shape.right_filters
    for condition in conditions:
        for operand in (condition.left, condition.right):
            if operand.kind == "col" and operand.alias == alias:
                needed.add(operand.column)
    return sorted(needed)


def _prepare_side(connection, table: str, columns: List[str], valid: str,
                  filters: Sequence[Condition], now_seconds: int,
                  window_pair: Optional[Pair]) -> _Side:
    positions = {name: at for at, name in enumerate(columns)}
    fetched = connection.query(
        f"SELECT {', '.join(columns)} FROM {table}"
    )
    valid_at = positions[valid]
    rows: List[Tuple] = []
    pairs: List[List[Pair]] = []
    for row in fetched:
        keep = True
        for condition in filters:
            if not _evaluate(
                condition, lambda op: row[positions[op.column]]
            ):
                keep = False
                break
        if not keep:
            continue
        element = row[valid_at]
        if element is None:
            continue  # overlaps(NULL, x) is NULL: the row never joins
        if not isinstance(element, Element):
            raise TipTypeError(
                f"expected Element in {table}.{valid}, "
                f"got {type(element).__name__}"
            )
        grounded = element.ground_pairs(now_seconds)
        if not grounded:
            continue  # an empty element overlaps nothing
        if window_pair is not None and not ia.intersect(
            grounded, [window_pair]
        ):
            continue  # VALIDTIME PERIOD prefilter (full element kept)
        rows.append(row)
        pairs.append(grounded)
    return _Side(rows, pairs, positions)


# -- candidate generation ----------------------------------------------


def _hash_candidates(shape: JoinShape, left: _Side,
                     right: _Side) -> Tuple[List[int], List[int]]:
    """Equality-bucketed candidates as parallel ``(i, j)`` index lists.

    Each left row hits exactly one bucket and buckets hold ``j`` in
    fetch order, so the pairs come out unique and in (i, j) order with
    no dedup or sort — and the two flat lists feed numpy directly.
    """
    left_keys = [left.positions[col] for col, _ in shape.equalities]
    right_keys = [right.positions[col] for _, col in shape.equalities]
    buckets: Dict[Tuple, List[int]] = {}
    for j, row in enumerate(right.rows):
        key = tuple(row[at] for at in right_keys)
        if any(value is None for value in key):
            continue  # NULL = anything is never true
        # Python's dict groups 1 with 1.0 exactly as SQLite's `=` does;
        # text, blob, and numeric values never collide across classes.
        buckets.setdefault(key, []).append(j)
    i_list: List[int] = []
    j_list: List[int] = []
    for i, row in enumerate(left.rows):
        key = tuple(row[at] for at in left_keys)
        if any(value is None for value in key):
            continue
        bucket = buckets.get(key)
        if bucket:
            j_list.extend(bucket)
            i_list.extend(repeat(i, len(bucket)))
    return i_list, j_list


def _merge_candidates(left: _Side, right: _Side) -> Set[Tuple[int, int]]:
    """Sort-merge interval sweep: all row pairs with overlapping periods."""
    events: List[Tuple[int, int, int, int]] = []  # (start, side, end, row)
    for i, row_pairs in enumerate(left.pairs):
        events.extend((start, 0, end, i) for start, end in row_pairs)
    for j, row_pairs in enumerate(right.pairs):
        events.extend((start, 1, end, j) for start, end in row_pairs)
    events.sort()
    active: Tuple[List[Tuple[int, int]], List[Tuple[int, int]]] = ([], [])
    out: Set[Tuple[int, int]] = set()
    for start, side, end, index in events:
        other = active[1 - side]
        while other and other[0][0] < start:
            heapq.heappop(other)
        if side == 0:
            out.update((index, j) for _, j in other)
        else:
            out.update((i, index) for _, i in other)
        heapq.heappush(active[side], (end, index))
    return out


def _tree_candidates(left: _Side, right: _Side,
                     build_left: bool) -> Set[Tuple[int, int]]:
    """Bulk-build a tree over the small side, probe with the other."""
    small, big = (left, right) if build_left else (right, left)
    tree = IntervalTree.build(
        (start, end, i)
        for i, row_pairs in enumerate(small.pairs)
        for start, end in row_pairs
    )
    out: Set[Tuple[int, int]] = set()
    for j, row_pairs in enumerate(big.pairs):
        for start, end in row_pairs:
            for i in tree.search_overlap(start, end):
                out.add((i, j) if build_left else (j, i))
    return out


# -- vectorized emit (hash strategy, no residuals) ----------------------

#: Candidates per numpy batch; bounds peak array memory, not coverage.
_VECTOR_CHUNK = 1 << 18


def _row_builder(slots: Sequence[Tuple[int, int]]) -> Callable:
    """Compile ``(left_row, right_row, element) -> output tuple`` once.

    *slots* only contains trusted integers from the shape matcher, and
    a dedicated lambda beats a generic per-slot loop run per row.
    """
    parts = []
    for side, position in slots:
        if side == 2:
            parts.append("e")
        else:
            parts.append(f"{'l' if side == 0 else 'r'}[{position}]")
    spec = ", ".join(parts) + ("," if len(parts) == 1 else "")
    return eval(f"lambda l, r, e: ({spec})")  # noqa: S307


def _flatten_pairs(side: _Side):
    """Side validity pairs as flat arrays plus per-row offsets."""
    counts = _np.fromiter((len(p) for p in side.pairs), dtype=_np.int64,
                          count=len(side.pairs))
    offsets = _np.zeros(len(counts) + 1, dtype=_np.int64)
    _np.cumsum(counts, out=offsets[1:])
    flat = _np.fromiter(
        (bound for pairs in side.pairs for pair in pairs for bound in pair),
        dtype=_np.int64, count=int(offsets[-1]) * 2,
    )
    return counts, offsets, flat[0::2], flat[1::2]


def _vector_emit(left: _Side, right: _Side,
                 i_list: List[int], j_list: List[int],
                 window_pair: Optional[Pair],
                 build_row: Callable) -> List[Tuple]:
    """Array-evaluated emit: same rows, same order as the scalar loop.

    Every candidate row pair expands to its period×period combinations;
    one vectorized max/min pass intersects them all, and the surviving
    combinations — already grouped per candidate and in canonical
    order — become each output row's validity element.  Window
    clipping happens after the survival test, so a pair whose shared
    time misses the window still emits (with empty validity), exactly
    like ``restrict(tintersect(...), window)``.
    """
    rows: List[Tuple] = []
    if not i_list:
        return rows
    l_counts, l_offsets, l_starts, l_ends = _flatten_pairs(left)
    if right is left:
        r_counts, r_offsets = l_counts, l_offsets
        r_starts, r_ends = l_starts, l_ends
    else:
        r_counts, r_offsets, r_starts, r_ends = _flatten_pairs(right)
    all_lefts = _np.asarray(i_list, dtype=_np.int64)
    all_rights = _np.asarray(j_list, dtype=_np.int64)
    left_rows, right_rows = left.rows, right.rows
    empty_element = Element._from_canonical_pairs(())
    from_canonical = Element._from_canonical_pairs
    append = rows.append
    for chunk_at in range(0, len(all_lefts), _VECTOR_CHUNK):
        lefts = all_lefts[chunk_at:chunk_at + _VECTOR_CHUNK]
        rights = all_rights[chunk_at:chunk_at + _VECTOR_CHUNK]
        n_right = r_counts[rights]
        combos = l_counts[lefts] * n_right
        bounds = _np.zeros(len(lefts) + 1, dtype=_np.int64)
        _np.cumsum(combos, out=bounds[1:])
        total = int(bounds[-1])
        # which[t] = chunk-local candidate of combination t; k = its
        # combination ordinal, split p-major/q-minor below.
        which = _np.repeat(_np.arange(len(lefts)), combos)
        k = _np.arange(total, dtype=_np.int64) - bounds[:-1][which]
        nj = n_right[which]
        p_at = l_offsets[lefts][which] + k // nj
        q_at = r_offsets[rights][which] + k % nj
        lo = _np.maximum(l_starts[p_at], r_starts[q_at])
        hi = _np.minimum(l_ends[p_at], r_ends[q_at])
        keep = lo <= hi
        which_kept = which[keep]
        if not len(which_kept):
            continue
        lo_kept = lo[keep]
        hi_kept = hi[keep]
        # Candidates that survive, in emit order (which_kept is sorted).
        change = _np.empty(len(which_kept), dtype=bool)
        change[0] = True
        _np.not_equal(which_kept[1:], which_kept[:-1], out=change[1:])
        survivors = which_kept[change]
        if window_pair is not None:
            lo_kept = _np.maximum(lo_kept, window_pair[0])
            hi_kept = _np.minimum(hi_kept, window_pair[1])
            inside = lo_kept <= hi_kept
            which_kept = which_kept[inside]
            lo_kept = lo_kept[inside]
            hi_kept = hi_kept[inside]
        slice_from = _np.searchsorted(which_kept, survivors, "left").tolist()
        slice_to = _np.searchsorted(which_kept, survivors, "right").tolist()
        lo_list = lo_kept.tolist()
        hi_list = hi_kept.tolist()
        survivor_rows = zip(lefts[survivors].tolist(),
                            rights[survivors].tolist(),
                            slice_from, slice_to)
        if window_pair is None:
            # No clipping: every survivor kept at least one pair.
            for i, j, s, e in survivor_rows:
                if e - s == 1:  # by far the common case
                    pairs: Tuple[Pair, ...] = ((lo_list[s], hi_list[s]),)
                else:
                    pairs = tuple(zip(lo_list[s:e], hi_list[s:e]))
                append(build_row(left_rows[i], right_rows[j],
                                 from_canonical(pairs)))
        else:
            for i, j, s, e in survivor_rows:
                if e - s == 1:
                    pairs = ((lo_list[s], hi_list[s]),)
                elif e > s:
                    pairs = tuple(zip(lo_list[s:e], hi_list[s:e]))
                else:
                    pairs = ()  # the window emptied the row's validity
                append(build_row(left_rows[i], right_rows[j],
                                 from_canonical(pairs) if pairs
                                 else empty_element))
    return rows


# -- the kernels --------------------------------------------------------


def execute_join(connection, shape: JoinShape,
                 now_seconds: int) -> KernelResult:
    window_pair = None
    if shape.window is not None:
        from repro.core.parser import parse_period

        window_pair = parse_period(f"[{shape.window}]").ground_pair(
            now_seconds
        )
        if window_pair is None:
            # The window itself is empty: nothing can overlap it.
            return KernelResult([], _join_columns(shape), "empty-window",
                                now_seconds, {"candidates": 0})
    left_columns = _columns_for_side(shape, shape.left_alias,
                                     shape.left_valid)
    right_columns = _columns_for_side(shape, shape.right_alias,
                                      shape.right_valid)
    if (shape.left_table == shape.right_table
            and shape.left_valid == shape.right_valid
            and not shape.left_filters and not shape.right_filters):
        # Unfiltered self-join (the temporal-graph path query): fetch
        # and decode the table once, share it between both sides.
        shared_columns = sorted(set(left_columns) | set(right_columns))
        left = right = _prepare_side(
            connection, shape.left_table, shared_columns,
            shape.left_valid, (), now_seconds, window_pair,
        )
    else:
        left = _prepare_side(
            connection, shape.left_table, left_columns,
            shape.left_valid, shape.left_filters, now_seconds, window_pair,
        )
        right = _prepare_side(
            connection, shape.right_table, right_columns,
            shape.right_valid, shape.right_filters, now_seconds,
            window_pair,
        )

    n_left = sum(len(p) for p in left.pairs)
    n_right = sum(len(p) for p in right.pairs)
    pair_iter: Sequence[Tuple[int, int]]
    if shape.equalities:
        strategy = "hash"
        i_list, j_list = _hash_candidates(shape, left, right)
        n_candidates = len(i_list)
        pair_iter = zip(i_list, j_list)  # type: ignore[assignment]
    elif n_left * TREE_SKEW <= n_right or n_right * TREE_SKEW <= n_left:
        strategy = "tree"
        pair_iter = sorted(_tree_candidates(left, right,
                                            build_left=n_left <= n_right))
        n_candidates = len(pair_iter)
    else:
        strategy = "merge"
        pair_iter = sorted(_merge_candidates(left, right))
        n_candidates = len(pair_iter)

    # Assemble: resolve residuals, intersect full elements, clip last —
    # exactly restrict(tintersect(a, b), window)'s order of operations,
    # so a pair whose shared time misses the window still emits a row
    # (with an empty validity), as the naive path does.
    # slots: (side, position) per output slot; side 2 is the validity.
    slots: List[Tuple[int, int]] = []
    cursor = 0
    for at in range(len(shape.outputs) + 1):
        if at == shape.valid_at:
            slots.append((2, 0))
            continue
        output = shape.outputs[cursor]
        cursor += 1
        side = 0 if output.alias == shape.left_alias else 1
        positions = left.positions if side == 0 else right.positions
        slots.append((side, positions[output.column]))

    cross = shape.cross
    build_row = _row_builder(slots)
    if strategy == "hash" and not cross and _np is not None:
        rows = _vector_emit(left, right, i_list, j_list, window_pair,
                            build_row)
        return KernelResult(
            rows, _join_columns(shape), strategy, now_seconds,
            {"candidates": n_candidates,
             "left_rows": len(left.rows), "right_rows": len(right.rows)},
        )
    rows: List[Tuple] = []
    # Identical intersections share one immutable Element — under a
    # common rush window most candidate pairs intersect to the same few
    # sets, and element construction dominates the emit loop otherwise.
    elements: Dict[Tuple[Pair, ...], Element] = {}
    left_rows, right_rows = left.rows, right.rows
    left_pairs, right_pairs = left.pairs, right.pairs
    intersect = ia.intersect
    for i, j in pair_iter:
        left_row = left_rows[i]
        right_row = right_rows[j]
        if cross:
            ok = True
            for condition in cross:
                # match() normalized cross conditions left-operand-first
                def resolve(op, _l=left_row, _r=right_row):
                    side_row = _l if op.alias == shape.left_alias else _r
                    positions = left.positions \
                        if op.alias == shape.left_alias else right.positions
                    return side_row[positions[op.column]]
                if not _evaluate(condition, resolve):
                    ok = False
                    break
            if not ok:
                continue
        a, b = left_pairs[i], right_pairs[j]
        if len(a) == 1 and len(b) == 1:
            (a_lo, a_hi), (b_lo, b_hi) = a[0], b[0]
            lo = a_lo if a_lo > b_lo else b_lo
            hi = a_hi if a_hi < b_hi else b_hi
            if lo > hi:
                continue
            shared: Tuple[Pair, ...] = ((lo, hi),)
        else:
            shared = tuple(intersect(a, b))
            if not shared:
                continue
        if window_pair is not None:
            shared = tuple(
                ia.restrict(shared, window_pair[0], window_pair[1])
            )
        element = elements.get(shared)
        if element is None:
            element = elements[shared] = \
                Element._from_canonical_pairs(shared)
        rows.append(build_row(left_row, right_row, element))
    return KernelResult(
        rows, _join_columns(shape), strategy, now_seconds,
        {"candidates": n_candidates,
         "left_rows": len(left.rows), "right_rows": len(right.rows)},
    )


def _join_columns(shape: JoinShape) -> List[str]:
    names = [output.name for output in shape.outputs]
    names.insert(shape.valid_at, shape.valid_name)
    return names


def _order_key(value: object):
    """A total order over mixed-type values for deterministic output."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, bytes):
        return (3, value)
    return (4, repr(value))


def execute_coalesce(connection, shape: CoalesceShape,
                     now_seconds: int) -> KernelResult:
    needed = set(shape.group_by) | {shape.agg_column}
    for condition in shape.filters:
        for operand in (condition.left, condition.right):
            if operand.kind == "col":
                needed.add(operand.column)
    columns = sorted(needed)
    positions = {name: at for at, name in enumerate(columns)}
    fetched = connection.query(
        f"SELECT {', '.join(columns)} FROM {shape.table}"
    )

    group_positions = [positions[col] for col in shape.group_by]
    agg_position = positions[shape.agg_column]
    # A group's key hashes 1 and 1.0 together (dict semantics == SQLite
    # GROUP BY) and keeps NULLs in one group, also like SQLite.
    groups: Dict[Tuple, List[Pair]] = {}
    representative: Dict[Tuple, Tuple] = {}
    for row in fetched:
        keep = True
        for condition in shape.filters:
            if not _evaluate(
                condition, lambda op: row[positions[op.column]]
            ):
                keep = False
                break
        if not keep:
            continue
        key = tuple(row[at] for at in group_positions)
        pool = groups.get(key)
        if pool is None:
            pool = groups[key] = []
            representative[key] = row
        value = row[agg_position]
        if value is None:
            continue  # aggregates ignore NULL, the group still exists
        if not isinstance(value, Element):
            raise TipTypeError(
                f"group_union expects Elements, "
                f"got {type(value).__name__}"
            )
        pool.extend(value.ground_pairs(now_seconds))

    slots = [positions[output.column] for output in shape.outputs]
    rows: List[Tuple] = []
    for key in sorted(groups, key=lambda k: tuple(_order_key(v) for v in k)):
        element = Element.from_pairs(groups[key])
        if shape.agg_wrapper == "length":
            aggregate: object = element.length()
        elif shape.agg_wrapper == "length_seconds":
            aggregate = element.length().seconds
        else:
            aggregate = element
        row = representative[key]
        out: List[object] = []
        cursor = 0
        for at in range(len(shape.outputs) + 1):
            if at == shape.agg_at:
                out.append(aggregate)
            else:
                out.append(row[slots[cursor]])
                cursor += 1
        rows.append(tuple(out))
    columns_out = [output.name for output in shape.outputs]
    columns_out.insert(shape.agg_at, shape.agg_name)
    return KernelResult(
        rows, columns_out, "sweep", now_seconds,
        {"groups": len(groups), "input_rows": len(fetched)},
    )
