"""``python -m repro`` starts the interactive TIP shell."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
