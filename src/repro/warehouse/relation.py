"""In-memory temporal relations for the warehouse layer.

A :class:`TemporalRelation` maps each distinct row (a tuple of hashable
scalars) to a canonical validity — internally raw ``(start, end)``
second pairs, exposed as :class:`~repro.core.element.Element`.  Two
tuples with the same values are the *same* fact observed over more
time, so inserting merges validities (set semantics with temporal
coalescing, the snapshot-equivalence model of the temporal view
maintenance papers).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core import interval_algebra as ia
from repro.core.chronon import Chronon
from repro.core.element import Element
from repro.errors import TipValueError

__all__ = ["TemporalRelation"]

Pair = Tuple[int, int]
Row = Tuple


class TemporalRelation:
    """A set of rows, each timestamped with a canonical element."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self._data: Dict[Row, List[Pair]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_items(
        cls,
        columns: Sequence[str],
        items: Iterable[Tuple[Row, Element]],
    ) -> "TemporalRelation":
        relation = cls(columns)
        for row, element in items:
            relation.insert(row, element)
        return relation

    def copy(self) -> "TemporalRelation":
        clone = TemporalRelation(self.columns)
        clone._data = {row: list(pairs) for row, pairs in self._data.items()}
        return clone

    # -- mutation ----------------------------------------------------------

    def _check_row(self, row: Row) -> Row:
        row = tuple(row)
        if len(row) != len(self.columns):
            raise TipValueError(
                f"row has {len(row)} values, relation has {len(self.columns)} columns"
            )
        return row

    def insert(self, row: Row, validity: "Element | Sequence[Pair]") -> None:
        """Add validity for *row* (unions with any existing validity)."""
        row = self._check_row(row)
        pairs = self._to_pairs(validity)
        if not pairs:
            return
        existing = self._data.get(row)
        if existing is None:
            self._data[row] = list(pairs)
        else:
            self._data[row] = ia.union(existing, pairs)

    def remove(self, row: Row, validity: "Element | Sequence[Pair]") -> None:
        """Subtract validity from *row* (drops the row when empty)."""
        row = self._check_row(row)
        existing = self._data.get(row)
        if existing is None:
            return
        remaining = ia.difference(existing, self._to_pairs(validity))
        if remaining:
            self._data[row] = remaining
        else:
            del self._data[row]

    @staticmethod
    def _to_pairs(validity: "Element | Sequence[Pair]") -> List[Pair]:
        if isinstance(validity, Element):
            if not validity.is_determinate:
                raise TipValueError("warehouse relations store determinate validities")
            return validity.ground_pairs(0)
        return ia.normalize(validity)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._data

    def rows(self) -> Iterator[Row]:
        return iter(self._data)

    def pairs(self, row: Row) -> List[Pair]:
        """Raw validity pairs (empty list when the row is absent)."""
        return list(self._data.get(tuple(row), []))

    def element(self, row: Row) -> Element:
        """Validity of *row* as an element (empty when absent)."""
        return Element.from_pairs(self._data.get(tuple(row), []))

    def items(self) -> Iterator[Tuple[Row, List[Pair]]]:
        for row, pairs in self._data.items():
            yield row, list(pairs)

    def as_elements(self) -> List[Tuple[Row, Element]]:
        """Materialize as ``(row, Element)`` pairs, sorted for stability."""
        return [
            (row, Element.from_pairs(pairs))
            for row, pairs in sorted(self._data.items(), key=lambda item: repr(item[0]))
        ]

    # -- temporal queries ----------------------------------------------------------

    def snapshot(self, at: "Chronon | int") -> List[Row]:
        """Rows valid at the given time point (sorted for stability)."""
        point = at.seconds if isinstance(at, Chronon) else at
        return sorted(
            (row for row, pairs in self._data.items() if ia.contains_point(pairs, point)),
            key=repr,
        )

    def total_rows_seconds(self) -> int:
        """Sum of validity lengths over all rows (a size diagnostic)."""
        return sum(ia.total_length(pairs) for pairs in self._data.values())

    # -- comparison --------------------------------------------------------------------

    def same_contents(self, other: "TemporalRelation") -> bool:
        """Equality of rows and validities (the E8 invariant check)."""
        if self.columns != other.columns or len(self._data) != len(other._data):
            return False
        for row, pairs in self._data.items():
            if other._data.get(row) != pairs:
                return False
        return True

    def __repr__(self) -> str:
        return f"TemporalRelation(columns={self.columns}, rows={len(self._data)})"
