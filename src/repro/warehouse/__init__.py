"""Temporal data warehousing — the application TIP was built for.

The authors' stated motivation (Section 1 and references [9, 10]) is a
temporal data warehouse: maintaining *temporal views* over sources, with
incremental (self-)maintenance.  This package implements that layer on
top of the TIP type system:

* :mod:`repro.warehouse.relation` — in-memory temporal relations
  (rows timestamped with canonical elements);
* :mod:`repro.warehouse.tracker` — derive a temporal relation from a
  stream of changes to a *non-temporal* source (open versions end at
  ``NOW``);
* :mod:`repro.warehouse.views` — temporal selection / projection /
  join views with full recomputation;
* :mod:`repro.warehouse.maintenance` — materialized views maintained
  incrementally from base-table deltas, with the invariant
  ``incremental == recompute`` (experiment E8).
"""

from repro.warehouse.maintenance import (
    Change,
    MaterializedDifference,
    MaterializedJoin,
    MaterializedProjection,
    MaterializedSelection,
)
from repro.warehouse.relation import TemporalRelation
from repro.warehouse.tracker import ChangeTracker
from repro.warehouse.views import DifferenceView, JoinView, ProjectionView, SelectionView

__all__ = [
    "TemporalRelation",
    "ChangeTracker",
    "SelectionView",
    "ProjectionView",
    "JoinView",
    "DifferenceView",
    "Change",
    "MaterializedSelection",
    "MaterializedProjection",
    "MaterializedJoin",
    "MaterializedDifference",
]
