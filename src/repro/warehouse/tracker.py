"""Deriving temporal relations from non-temporal sources.

Reference [9] of the paper (Yang & Widom, EDBT 1998) maintains temporal
views over *non-temporal* information sources: the source only ever
shows its current state, and the warehouse timestamps what it observes.
:class:`ChangeTracker` is that observation layer — it consumes a stream
of ``insert`` / ``update`` / ``delete`` events, each carrying its
observation time, and produces a temporal relation in which every
observed version of a row carries its validity element.  Versions that
are still live end at ``NOW`` — exactly the timestamps TIP's ``Element``
with ``NOW``-relative periods was designed to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.chronon import Chronon
from repro.core.element import Element
from repro.core.instant import NOW
from repro.core.period import Period
from repro.errors import TipValueError
from repro.warehouse.relation import TemporalRelation

__all__ = ["ChangeTracker", "SourceEvent"]


@dataclass(frozen=True)
class SourceEvent:
    """One observed source change."""

    kind: str  # "insert" | "update" | "delete"
    key: Hashable
    attrs: Optional[Tuple]  # None for deletes
    at_seconds: int


def _to_seconds(at: "Chronon | int") -> int:
    if isinstance(at, Chronon):
        return at.seconds
    if isinstance(at, int) and not isinstance(at, bool):
        return at
    raise TipValueError(f"event time must be a Chronon or seconds, got {type(at).__name__}")


class ChangeTracker:
    """Timestamps a stream of source changes into a temporal relation.

    A version observed at time *t* is valid from *t*; the version it
    replaces is closed at *t - 1* (closed-closed chronons).  Event times
    must be non-decreasing, as observations of a live source are.
    """

    def __init__(self, key_column: str, attr_columns: Sequence[str]) -> None:
        self.key_column = key_column
        self.attr_columns: Tuple[str, ...] = tuple(attr_columns)
        #: key -> (attrs, since_seconds) for currently-live versions.
        self._live: Dict[Hashable, Tuple[Tuple, int]] = {}
        #: Closed versions as (key, attrs, start_s, end_s).
        self._closed: List[Tuple[Hashable, Tuple, int, int]] = []
        self._log: List[SourceEvent] = []
        self._last_seconds: Optional[int] = None

    # -- event ingestion -------------------------------------------------

    def _advance(self, at: "Chronon | int") -> int:
        seconds = _to_seconds(at)
        if self._last_seconds is not None and seconds < self._last_seconds:
            raise TipValueError(
                f"events must arrive in time order: {seconds} after {self._last_seconds}"
            )
        self._last_seconds = seconds
        return seconds

    def _check_attrs(self, attrs: Sequence) -> Tuple:
        attrs = tuple(attrs)
        if len(attrs) != len(self.attr_columns):
            raise TipValueError(
                f"expected {len(self.attr_columns)} attributes, got {len(attrs)}"
            )
        return attrs

    def insert(self, key: Hashable, attrs: Sequence, at: "Chronon | int") -> None:
        """The source gained a row for *key*."""
        seconds = self._advance(at)
        if key in self._live:
            raise TipValueError(f"insert of live key {key!r}; use update")
        attrs = self._check_attrs(attrs)
        self._live[key] = (attrs, seconds)
        self._log.append(SourceEvent("insert", key, attrs, seconds))

    def update(self, key: Hashable, attrs: Sequence, at: "Chronon | int") -> None:
        """The source's row for *key* changed to *attrs*."""
        seconds = self._advance(at)
        if key not in self._live:
            raise TipValueError(f"update of unknown key {key!r}")
        attrs = self._check_attrs(attrs)
        old_attrs, since = self._live[key]
        if attrs == old_attrs:
            return  # no observable change
        self._close(key, old_attrs, since, seconds - 1)
        self._live[key] = (attrs, seconds)
        self._log.append(SourceEvent("update", key, attrs, seconds))

    def delete(self, key: Hashable, at: "Chronon | int") -> None:
        """The source's row for *key* disappeared."""
        seconds = self._advance(at)
        if key not in self._live:
            raise TipValueError(f"delete of unknown key {key!r}")
        old_attrs, since = self._live.pop(key)
        self._close(key, old_attrs, since, seconds - 1)
        self._log.append(SourceEvent("delete", key, None, seconds))

    def _close(self, key: Hashable, attrs: Tuple, start_s: int, end_s: int) -> None:
        if start_s <= end_s:  # a version replaced in the same chronon vanishes
            self._closed.append((key, attrs, start_s, end_s))

    # -- views of the history -----------------------------------------------

    @property
    def events(self) -> List[SourceEvent]:
        return list(self._log)

    def live_keys(self) -> List[Hashable]:
        return sorted(self._live, key=repr)

    def as_temporal_rows(self) -> List[Tuple[Tuple, Element]]:
        """Every version with its validity; live versions end at ``NOW``.

        This is the TIP-native rendering: elements may contain
        ``NOW``-relative periods and can be stored directly in an
        ``ELEMENT`` column.
        """
        by_row: Dict[Tuple, List[Period]] = {}
        for key, attrs, start_s, end_s in self._closed:
            row = (key, *attrs)
            by_row.setdefault(row, []).append(Period(Chronon(start_s), Chronon(end_s)))
        for key, (attrs, since) in self._live.items():
            row = (key, *attrs)
            by_row.setdefault(row, []).append(Period(Chronon(since), NOW))
        return [(row, Element(periods)) for row, periods in sorted(by_row.items(), key=lambda i: repr(i[0]))]

    def as_relation(self, now: "Chronon | int") -> TemporalRelation:
        """Determinate temporal relation with open versions grounded at *now*."""
        now_seconds = _to_seconds(now)
        relation = TemporalRelation((self.key_column, *self.attr_columns))
        for key, attrs, start_s, end_s in self._closed:
            relation.insert((key, *attrs), [(start_s, end_s)])
        for key, (attrs, since) in self._live.items():
            if since <= now_seconds:
                relation.insert((key, *attrs), [(since, now_seconds)])
        return relation
