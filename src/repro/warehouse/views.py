"""Temporal view definitions (full recomputation semantics).

The views follow the snapshot-reducible temporal algebra used in the
temporal view maintenance literature [9, 10]:

* **Selection** keeps rows satisfying a predicate, validity unchanged;
* **Projection** keeps a subset of columns and *coalesces*: rows that
  become identical contribute the union of their validities (this is
  ``group_union`` at the algebra level);
* **Join** pairs rows whose join attributes match, the result being
  valid exactly when *both* inputs are (validity intersection).

:func:`~repro.warehouse.views.View.evaluate` is the reference
implementation that :mod:`repro.warehouse.maintenance` must agree with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core import interval_algebra as ia
from repro.errors import TipValueError
from repro.warehouse.relation import TemporalRelation

__all__ = ["View", "SelectionView", "ProjectionView", "JoinView", "DifferenceView"]

Row = Tuple


class View:
    """Base class: a temporal query evaluable over base relations."""

    def evaluate(self, *bases: TemporalRelation) -> TemporalRelation:
        raise NotImplementedError


def _column_indices(relation_columns: Sequence[str], wanted: Sequence[str]) -> List[int]:
    indices = []
    for name in wanted:
        if name not in relation_columns:
            raise TipValueError(f"unknown column {name!r} (have {list(relation_columns)})")
        indices.append(list(relation_columns).index(name))
    return indices


@dataclass
class SelectionView(View):
    """``sigma_pred(R)`` — temporal selection."""

    predicate: Callable[[Row], bool]

    def evaluate(self, base: TemporalRelation) -> TemporalRelation:
        out = TemporalRelation(base.columns)
        for row, pairs in base.items():
            if self.predicate(row):
                out.insert(row, pairs)
        return out


@dataclass
class ProjectionView(View):
    """``pi_cols(R)`` — temporal projection with coalescing."""

    columns: Sequence[str]

    def evaluate(self, base: TemporalRelation) -> TemporalRelation:
        indices = _column_indices(base.columns, self.columns)
        out = TemporalRelation(tuple(self.columns))
        for row, pairs in base.items():
            projected = tuple(row[index] for index in indices)
            out.insert(projected, pairs)  # insert unions = group_union
        return out


@dataclass
class DifferenceView(View):
    """``R - S`` — snapshot-reducible temporal difference.

    A row is in the result at instant *t* when it is in *R* but not in
    *S* at *t*; row matching is full value equality, so the result
    validity of each row is ``validity_R(row) - validity_S(row)``.
    Both relations must share the same columns.
    """

    def evaluate(self, left: TemporalRelation, right: TemporalRelation) -> TemporalRelation:
        if left.columns != right.columns:
            raise TipValueError(
                f"difference needs identical columns: {left.columns} vs {right.columns}"
            )
        out = TemporalRelation(left.columns)
        for row, pairs in left.items():
            out.insert(row, ia.difference(pairs, right.pairs(row)))
        return out


@dataclass
class JoinView(View):
    """``R ⋈ S`` — temporal equijoin with validity intersection.

    Output columns: all of the left relation, then the right relation's
    non-join columns.
    """

    left_on: Sequence[str]
    right_on: Sequence[str]

    def output_columns(self, left: TemporalRelation, right: TemporalRelation) -> Tuple[str, ...]:
        right_keep = [name for name in right.columns if name not in self.right_on]
        return (*left.columns, *right_keep)

    def evaluate(self, left: TemporalRelation, right: TemporalRelation) -> TemporalRelation:
        if len(self.left_on) != len(self.right_on):
            raise TipValueError("join column lists differ in length")
        left_idx = _column_indices(left.columns, self.left_on)
        right_idx = _column_indices(right.columns, self.right_on)
        right_keep_idx = [
            index for index, name in enumerate(right.columns) if name not in self.right_on
        ]
        out = TemporalRelation(self.output_columns(left, right))

        # Hash the right side on its join key.
        right_index: Dict[Tuple, List[Tuple[Row, List[ia.Pair]]]] = {}
        for row, pairs in right.items():
            key = tuple(row[index] for index in right_idx)
            right_index.setdefault(key, []).append((row, pairs))

        for lrow, lpairs in left.items():
            key = tuple(lrow[index] for index in left_idx)
            for rrow, rpairs in right_index.get(key, ()):
                shared = ia.intersect(lpairs, rpairs)
                if shared:
                    combined = (*lrow, *(rrow[index] for index in right_keep_idx))
                    out.insert(combined, shared)
        return out
