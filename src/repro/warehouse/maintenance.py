"""Incremental maintenance of materialized temporal views.

The point of reference [10] (*Temporal view self-maintenance in a
warehousing environment*): when a base table changes, bring the
materialized view up to date from the *delta* alone, without
re-evaluating the view over the full base data.

A delta is a list of :class:`Change` records — validity added to or
removed from a row.  Each materializer consumes base deltas, updates its
stored result, and emits its *own* output delta, so materializers
compose into view pipelines.  The correctness invariant (experiment E8,
property-tested): after any change stream, the incrementally maintained
contents equal a full recomputation.

Maintenance costs:

* selection — ``O(|delta|)``;
* projection — ``O(|delta| * c)`` where *c* is the contributor count of
  the affected output rows (coalesced validities cannot be updated from
  the delta alone, because removing one contributor's time may or may
  not remove it from the union — the classic aggregate-maintenance
  subtlety);
* join — ``O(|delta| * match)`` using a hash index on the other side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core import interval_algebra as ia
from repro.errors import TipValueError
from repro.warehouse.relation import TemporalRelation
from repro.warehouse.views import DifferenceView, JoinView, ProjectionView, SelectionView

__all__ = [
    "Change",
    "MaterializedSelection",
    "MaterializedProjection",
    "MaterializedJoin",
    "MaterializedDifference",
]

Row = Tuple
Pair = Tuple[int, int]

INSERT = "+"
DELETE = "-"


@dataclass(frozen=True)
class Change:
    """Validity added to (``+``) or removed from (``-``) a row."""

    kind: str
    row: Row
    pairs: Tuple[Pair, ...]

    def __post_init__(self) -> None:
        if self.kind not in (INSERT, DELETE):
            raise TipValueError(f"change kind must be '+' or '-', got {self.kind!r}")


def apply_changes(relation: TemporalRelation, changes: Sequence[Change]) -> None:
    """Apply a delta to a relation in place."""
    for change in changes:
        if change.kind == INSERT:
            relation.insert(change.row, list(change.pairs))
        else:
            relation.remove(change.row, list(change.pairs))


class MaterializedSelection:
    """Incrementally maintained ``sigma_pred(R)``."""

    def __init__(self, view: SelectionView, base: TemporalRelation) -> None:
        self.view = view
        self.contents = view.evaluate(base)

    def apply(self, delta: Sequence[Change]) -> List[Change]:
        """Consume a base delta; return the view's output delta."""
        out: List[Change] = []
        for change in delta:
            if self.view.predicate(change.row):
                out.append(change)
        apply_changes(self.contents, out)
        return out


class MaterializedProjection:
    """Incrementally maintained ``pi_cols(R)`` with coalescing.

    Keeps, per output row, the validity of every contributing input row
    (the *auxiliary data* of self-maintenance): deletions recompute the
    union over the affected output row only.
    """

    def __init__(self, view: ProjectionView, base: TemporalRelation) -> None:
        self.view = view
        self._indices = [list(base.columns).index(name) for name in view.columns]
        #: output row -> input row -> validity pairs
        self._support: Dict[Row, Dict[Row, List[Pair]]] = {}
        self.contents = TemporalRelation(tuple(view.columns))
        bootstrap = [Change(INSERT, row, tuple(pairs)) for row, pairs in base.items()]
        self.apply(bootstrap)

    def _project(self, row: Row) -> Row:
        return tuple(row[index] for index in self._indices)

    def apply(self, delta: Sequence[Change]) -> List[Change]:
        touched: Dict[Row, List[Pair]] = {}
        for out_row in set(self._project(change.row) for change in delta):
            touched[out_row] = self.contents.pairs(out_row)

        for change in delta:
            out_row = self._project(change.row)
            support = self._support.setdefault(out_row, {})
            current = support.get(change.row, [])
            if change.kind == INSERT:
                support[change.row] = ia.union(current, ia.normalize(change.pairs))
            else:
                remaining = ia.difference(current, ia.normalize(change.pairs))
                if remaining:
                    support[change.row] = remaining
                else:
                    support.pop(change.row, None)

        out: List[Change] = []
        for out_row, before in touched.items():
            support = self._support.get(out_row, {})
            after: List[Pair] = []
            for pairs in support.values():
                after = ia.union(after, pairs)
            if not support:
                self._support.pop(out_row, None)
            gained = ia.difference(after, before)
            lost = ia.difference(before, after)
            if gained:
                out.append(Change(INSERT, out_row, tuple(gained)))
            if lost:
                out.append(Change(DELETE, out_row, tuple(lost)))
        apply_changes(self.contents, out)
        return out


class MaterializedDifference:
    """Incrementally maintained ``R - S`` (temporal anti-semijoin).

    A delta to either side only affects the *rows it names*, so
    maintenance recomputes ``L(row) - S(row)`` for the touched rows and
    emits the difference against the stored view — row-granular
    incremental work, independent of the base sizes.
    """

    def __init__(self, view: DifferenceView, left: TemporalRelation, right: TemporalRelation) -> None:
        self.view = view
        self._left = left.copy()
        self._right = right.copy()
        self.contents = view.evaluate(left, right)

    def _emit_row_delta(self, row: Row) -> List[Change]:
        before = self.contents.pairs(row)
        after = ia.difference(self._left.pairs(row), self._right.pairs(row))
        out: List[Change] = []
        gained = ia.difference(after, before)
        lost = ia.difference(before, after)
        if gained:
            out.append(Change(INSERT, row, tuple(gained)))
        if lost:
            out.append(Change(DELETE, row, tuple(lost)))
        return out

    def apply_left(self, delta: Sequence[Change]) -> List[Change]:
        apply_changes(self._left, delta)
        out: List[Change] = []
        for row in dict.fromkeys(change.row for change in delta):
            out.extend(self._emit_row_delta(row))
        apply_changes(self.contents, out)
        return out

    def apply_right(self, delta: Sequence[Change]) -> List[Change]:
        apply_changes(self._right, delta)
        out: List[Change] = []
        for row in dict.fromkeys(change.row for change in delta):
            out.extend(self._emit_row_delta(row))
        apply_changes(self.contents, out)
        return out


class MaterializedJoin:
    """Incrementally maintained temporal equijoin.

    Maintains copies of both inputs plus hash indexes on the join keys;
    a delta on one side joins against the *stored* other side only.
    """

    def __init__(self, view: JoinView, left: TemporalRelation, right: TemporalRelation) -> None:
        self.view = view
        self._left = left.copy()
        self._right = right.copy()
        self._left_idx = [list(left.columns).index(name) for name in view.left_on]
        self._right_idx = [list(right.columns).index(name) for name in view.right_on]
        self._right_keep_idx = [
            index for index, name in enumerate(right.columns) if name not in view.right_on
        ]
        self._left_by_key: Dict[Tuple, set] = {}
        self._right_by_key: Dict[Tuple, set] = {}
        for row in left.rows():
            self._left_by_key.setdefault(self._left_key(row), set()).add(row)
        for row in right.rows():
            self._right_by_key.setdefault(self._right_key(row), set()).add(row)
        self.contents = view.evaluate(left, right)

    def _left_key(self, row: Row) -> Tuple:
        return tuple(row[index] for index in self._left_idx)

    def _right_key(self, row: Row) -> Tuple:
        return tuple(row[index] for index in self._right_idx)

    def _combine(self, left_row: Row, right_row: Row) -> Row:
        return (*left_row, *(right_row[index] for index in self._right_keep_idx))

    def _reindex(self, side: str, row: Row) -> None:
        """Keep the hash index consistent after a relation mutation."""
        if side == "left":
            relation, index, key = self._left, self._left_by_key, self._left_key(row)
        else:
            relation, index, key = self._right, self._right_by_key, self._right_key(row)
        bucket = index.setdefault(key, set())
        if row in relation:
            bucket.add(row)
        else:
            bucket.discard(row)
            if not bucket:
                del index[key]

    def apply_left(self, delta: Sequence[Change]) -> List[Change]:
        """Consume a delta of the left input."""
        out: List[Change] = []
        for change in delta:
            key = self._left_key(change.row)
            for right_row in self._right_by_key.get(key, ()):
                shared = ia.intersect(ia.normalize(change.pairs), self._right.pairs(right_row))
                if shared:
                    out.append(
                        Change(change.kind, self._combine(change.row, right_row), tuple(shared))
                    )
        apply_changes(self._left, delta)
        for change in delta:
            self._reindex("left", change.row)
        apply_changes(self.contents, out)
        return out

    def apply_right(self, delta: Sequence[Change]) -> List[Change]:
        """Consume a delta of the right input."""
        out: List[Change] = []
        for change in delta:
            key = self._right_key(change.row)
            for left_row in self._left_by_key.get(key, ()):
                shared = ia.intersect(self._left.pairs(left_row), ia.normalize(change.pairs))
                if shared:
                    out.append(
                        Change(change.kind, self._combine(left_row, change.row), tuple(shared))
                    )
        apply_changes(self._right, delta)
        for change in delta:
            self._reindex("right", change.row)
        apply_changes(self.contents, out)
        return out
