"""Stdlib-only line-coverage estimate for pinning the CI fail-under gate.

CI runs the real ``pytest-cov``; this script exists for environments
without it.  It traces line events for files under ``src/repro`` while
running the test suite, counts executable lines by compiling each file
and walking ``co_lines`` of every code object, and prints per-package
and total percentages.

The estimate is deliberately conservative relative to coverage.py: it
counts ``pragma: no cover`` lines as executable (coverage.py excludes
them by default), so the printed total is a lower bound on what CI will
measure.  Pin ``--cov-fail-under`` a couple of points below this number.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading

BASE = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

_hits: dict = {}          # filename -> set of executed line numbers
_done: set = set()        # code objects whose lines are all seen
_lines_of: dict = {}      # code object -> frozenset of its line numbers


def _code_lines(code) -> frozenset:
    lines = _lines_of.get(code)
    if lines is None:
        lines = frozenset(ln for _, _, ln in code.co_lines() if ln is not None)
        _lines_of[code] = lines
    return lines


def _local_trace(frame, event, arg):
    if event == "line":
        code = frame.f_code
        bucket = _hits.setdefault(code.co_filename, set())
        bucket.add(frame.f_lineno)
        # Once every line of this code object has fired, stop paying
        # for it: the global trace will skip it from the next call on.
        if code not in _done and _code_lines(code) <= bucket:
            _done.add(code)
    return _local_trace


def _global_trace(frame, event, arg):
    code = frame.f_code
    if code in _done or not code.co_filename.startswith(BASE):
        return None
    return _local_trace


def _executable_lines(path: str) -> set:
    """All line numbers reachable by the compiler for *path*."""
    with open(path, "rb") as handle:
        source = handle.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines: set = set()
    stack = [top]
    while stack:
        code = stack.pop()
        lines.update(_code_lines(code))
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        status = pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if status != 0:
        print(f"pytest exited with {status}; coverage numbers unreliable", file=sys.stderr)

    total_exec = total_hit = 0
    rows = []
    for root, _dirs, files in os.walk(BASE):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            executable = _executable_lines(path)
            hit = _hits.get(path, set()) & executable
            total_exec += len(executable)
            total_hit += len(hit)
            rel = os.path.relpath(path, BASE)
            pct = 100.0 * len(hit) / len(executable) if executable else 100.0
            rows.append((pct, rel, len(hit), len(executable)))
    for pct, rel, hit, executable in sorted(rows):
        print(f"{pct:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"TOTAL {total_pct:.2f}% ({total_hit}/{total_exec} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
